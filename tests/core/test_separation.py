"""SeparationMonitor: batched window verdicts == the scalar pairwise oracle.

Mirrors the style of ``tests/geometry/test_batch_equivalence.py``: every
comparison between the scalar pair loop and the batched N² query is an
exact ``==`` — the two planes evaluate the same floating-point
expressions in the same order, so there is nothing to approximate.
"""

import random

import numpy as np
import pytest

from repro.core import MonitorSuite, SeparationMonitor
from repro.dynamics import DroneState
from repro.geometry import (
    Vec3,
    min_pairwise_separation,
    pairwise_index_pairs,
    pairwise_separations,
)


def _random_positions(rng, count, spread=30.0):
    return [
        Vec3(rng.uniform(0.0, spread), rng.uniform(0.0, spread), rng.uniform(0.0, 8.0))
        for _ in range(count)
    ]


class FakeEngine:
    """The minimal engine surface monitors read: topics and the clock."""

    def __init__(self):
        self.current_time = 0.0
        self.board = {}

    def read_topic(self, topic):
        return self.board.get(topic)

    def set(self, time, values):
        self.current_time = time
        self.board.update(values)


class TestPairwiseGeometry:
    def test_index_pairs_order(self):
        assert pairwise_index_pairs(3) == [(0, 1), (0, 2), (1, 2)]
        assert pairwise_index_pairs(1) == []
        assert pairwise_index_pairs(0) == []

    @pytest.mark.parametrize("count", [2, 3, 5, 9])
    def test_batched_separations_bit_identical_to_vec3_loop(self, count):
        rng = random.Random(count)
        positions = _random_positions(rng, count)
        batched = pairwise_separations(np.array([p.as_tuple() for p in positions]))
        scalar = [positions[i].distance_to(positions[j]) for i, j in pairwise_index_pairs(count)]
        assert batched.tolist() == scalar  # bit-identical, not approximately

    def test_windowed_separations_match_per_sample_queries(self):
        rng = random.Random(7)
        window = np.array(
            [[p.as_tuple() for p in _random_positions(rng, 4)] for _ in range(16)]
        )
        whole = pairwise_separations(window)
        per_sample = np.array([pairwise_separations(sample) for sample in window])
        assert whole.tolist() == per_sample.tolist()

    @pytest.mark.parametrize("count", [2, 4, 8])
    def test_min_pairwise_matches_argmin_of_batch(self, count):
        rng = random.Random(count + 100)
        for _ in range(20):
            positions = _random_positions(rng, count)
            distance, pair = min_pairwise_separation(positions)
            condensed = pairwise_separations(np.array([p.as_tuple() for p in positions]))
            k = int(condensed.argmin())
            assert pairwise_index_pairs(count)[k] == pair
            assert condensed[k] == distance

    def test_min_pairwise_requires_two_positions(self):
        with pytest.raises(ValueError):
            min_pairwise_separation([Vec3(0.0, 0.0, 0.0)])


def _violation_key(violation):
    return (violation.time, violation.monitor, violation.message)


def _run_scalar(monitor, samples):
    engine = FakeEngine()
    violations = []
    for time, values in samples:
        engine.set(time, values)
        violation = monitor.check(engine)
        if violation is not None:
            violations.append(violation)
    return violations


def _run_windowed(monitor, samples):
    engine = FakeEngine()
    suite = MonitorSuite([monitor])
    for time, values in samples:
        engine.set(time, values)
        suite.capture_all(engine)
    return suite.flush()


def _random_fleet_samples(rng, topics, steps, conflict_probability=0.4):
    """A randomized window; close pairs appear with the given probability."""
    samples = []
    for step in range(steps):
        positions = _random_positions(rng, len(topics))
        if rng.random() < conflict_probability:
            # Drag two random vehicles within a metre of each other.
            i, j = rng.sample(range(len(topics)), 2)
            positions[j] = positions[i] + Vec3(rng.uniform(0, 0.7), rng.uniform(0, 0.7), 0.0)
        samples.append(
            (
                0.25 * step,
                {
                    topic: DroneState(position=position)
                    for topic, position in zip(topics, positions)
                },
            )
        )
    return samples


class TestSeparationMonitorEquivalence:
    @pytest.mark.parametrize("fleet_size", [2, 3, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_batched_window_equals_scalar_oracle(self, fleet_size, seed):
        topics = [f"drone{i}/localPosition" for i in range(fleet_size)]
        rng = random.Random(1000 * fleet_size + seed)
        samples = _random_fleet_samples(rng, topics, steps=40)
        scalar = _run_scalar(
            SeparationMonitor(topics, min_separation=2.0, use_batch=False), samples
        )
        batched = _run_windowed(
            SeparationMonitor(topics, min_separation=2.0, use_batch=True), samples
        )
        windowed_scalar = _run_windowed(
            SeparationMonitor(topics, min_separation=2.0, use_batch=False), samples
        )
        assert [_violation_key(v) for v in batched] == [_violation_key(v) for v in scalar]
        assert [_violation_key(v) for v in windowed_scalar] == [
            _violation_key(v) for v in scalar
        ]
        # The randomized fleets must actually produce violations to compare.
        assert scalar

    def test_offending_pair_and_states_match(self):
        topics = ["a/pos", "b/pos", "c/pos"]
        close_b = DroneState(position=Vec3(10.0, 10.0, 2.0))
        close_c = DroneState(position=Vec3(10.5, 10.0, 2.0))
        far_a = DroneState(position=Vec3(0.0, 0.0, 2.0))
        samples = [(0.5, {"a/pos": far_a, "b/pos": close_b, "c/pos": close_c})]
        scalar_monitor = SeparationMonitor(topics, min_separation=2.0, use_batch=False)
        batch_monitor = SeparationMonitor(topics, min_separation=2.0, use_batch=True)
        (scalar_violation,) = _run_scalar(scalar_monitor, samples)
        (batch_violation,) = _run_windowed(batch_monitor, samples)
        assert "'b/pos'<->'c/pos'" in scalar_violation.message
        assert scalar_violation.message == batch_violation.message
        assert scalar_violation.state == (close_b, close_c) == batch_violation.state

    def test_missing_topics_skip_the_sample(self):
        topics = ["a/pos", "b/pos"]
        on_top = DroneState(position=Vec3(5.0, 5.0, 2.0))
        samples = [
            (0.0, {"a/pos": on_top}),  # b missing: skipped even though a is set
            (0.5, {"a/pos": on_top, "b/pos": on_top}),  # both present: violation
        ]
        scalar = _run_scalar(SeparationMonitor(topics, 2.0, use_batch=False), samples)
        batched = _run_windowed(SeparationMonitor(topics, 2.0, use_batch=True), samples)
        assert len(scalar) == len(batched) == 1
        assert scalar[0].time == batched[0].time == 0.5

    def test_reset_forgets_violations_and_pending(self):
        topics = ["a/pos", "b/pos"]
        on_top = DroneState(position=Vec3(5.0, 5.0, 2.0))
        monitor = SeparationMonitor(topics, 2.0)
        engine = FakeEngine()
        engine.set(1.0, {"a/pos": on_top, "b/pos": on_top})
        monitor.check(engine)
        monitor.capture(engine, serial=1)
        assert monitor.result.count == 1 and monitor._pending
        monitor.reset()
        assert monitor.result.ok and not monitor._pending
        assert monitor.flush() == []

    def test_raw_vec3_payloads_are_supported(self):
        monitor = SeparationMonitor(["a", "b"], 2.0)
        engine = FakeEngine()
        engine.set(0.0, {"a": Vec3(0.0, 0.0, 0.0), "b": Vec3(0.5, 0.0, 0.0)})
        violation = monitor.check(engine)
        assert violation is not None and "0.500 m" in violation.message

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            SeparationMonitor(["only"], 2.0)
        with pytest.raises(ValueError):
            SeparationMonitor(["a", "a"], 2.0)
        with pytest.raises(ValueError):
            SeparationMonitor(["a", "b"], 0.0)
