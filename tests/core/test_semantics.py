"""Tests of the operational semantics engine (Figure 11)."""

import pytest

from repro.core import (
    ConstantNode,
    FunctionNode,
    Program,
    SemanticsEngine,
    SimulationError,
    SoterCompiler,
    Topic,
)
from repro.core.decision import Mode
from repro.runtime import OverloadScheduler, PerfectScheduler

from .toy import build_toy_system, ToySimulation


def _simple_system(extra_nodes=None):
    program = Program(
        name="plain",
        topics=[Topic("ticks", int, 0)],
        nodes=extra_nodes or [],
    )
    return SoterCompiler().compile(program).system


class TestTimeProgress:
    def test_step_advances_to_earliest_calendar_entry(self):
        node = ConstantNode("c", {"ticks": 1}, period=0.2)
        engine = SemanticsEngine(_simple_system([node]))
        time, fired = engine.step()
        assert time == pytest.approx(0.0)
        assert fired == ["c"]
        time, fired = engine.step()
        assert time == pytest.approx(0.2)

    def test_empty_system_raises(self):
        engine = SemanticsEngine(_simple_system([]))
        with pytest.raises(SimulationError):
            engine.step()

    def test_run_until_respects_horizon(self):
        node = ConstantNode("c", {"ticks": 1}, period=0.1)
        engine = SemanticsEngine(_simple_system([node]))
        engine.run_until(0.55)
        # Firings at 0.0, 0.1, ..., 0.5 -> 6 firings.
        assert engine.stats.node_firings == 6

    def test_environment_hook_called_before_each_step(self):
        node = FunctionNode(
            "reader", lambda now, inputs: {"out": inputs.get("sensor")},
            subscribes=("sensor",), publishes=("out",), period=0.1,
        )
        engine = SemanticsEngine(_simple_system([node]))
        values = []

        def env(eng, upcoming):
            eng.set_input("sensor", upcoming)
            values.append(upcoming)

        engine.run_until(0.3, environment=env)
        assert values == pytest.approx([0.0, 0.1, 0.2, 0.3])
        assert engine.read_topic("out") == pytest.approx(0.3)

    def test_stop_condition_terminates_early(self):
        node = ConstantNode("c", {"ticks": 1}, period=0.1)
        engine = SemanticsEngine(_simple_system([node]))
        engine.run_until(10.0, stop_when=lambda eng: eng.current_time >= 0.5)
        assert engine.current_time == pytest.approx(0.5)


class TestEnvironmentInput:
    def test_set_input_updates_topic_and_stats(self):
        node = ConstantNode("c", {"ticks": 1}, period=0.1)
        engine = SemanticsEngine(_simple_system([node]))
        engine.set_input("weather", "windy")
        assert engine.read_topic("weather") == "windy"
        assert engine.stats.environment_inputs == 1


class TestOutputEnableGating:
    def test_modules_start_with_sc_enabled_and_ac_disabled(self):
        system = build_toy_system()
        engine = SemanticsEngine(system)
        module = system.modules[0]
        assert engine.output_enabled[module.spec.safe.name] is True
        assert engine.output_enabled[module.spec.advanced.name] is False

    def test_disabled_node_outputs_are_suppressed(self):
        sim = ToySimulation(build_toy_system(), initial_x=0.0)
        # At x=0 the state is deep inside φ_safer, so the DM hands control
        # to the AC after its first evaluation; before that, only the SC's
        # retreat command must be visible.
        sim.run(0.04)  # AC/SC fired at t=0; DM fired too (same instant order: ac, sc, dm)
        assert sim.engine.read_topic("cmd") == -1.0

    def test_dm_switch_enables_ac(self):
        sim = ToySimulation(build_toy_system(), initial_x=0.0)
        sim.run(0.3)
        assert sim.decision.mode is Mode.AC
        engine = sim.engine
        module = sim.system.modules[0]
        assert engine.output_enabled[module.spec.advanced.name] is True
        assert engine.output_enabled[module.spec.safe.name] is False

    def test_suppressed_publish_counted(self):
        sim = ToySimulation(build_toy_system(), initial_x=0.0)
        sim.run(0.5)
        assert sim.engine.stats.suppressed_publishes > 0


class TestSchedulingPolicies:
    def test_perfect_scheduler_never_drops(self):
        node = ConstantNode("c", {"ticks": 1}, period=0.1)
        engine = SemanticsEngine(_simple_system([node]), scheduler=PerfectScheduler())
        engine.run_until(1.0)
        assert engine.stats.dropped_firings == 0

    def test_overload_scheduler_starves_selected_node(self):
        node = ConstantNode("c", {"ticks": 1}, period=0.1)
        scheduler = OverloadScheduler(starved_nodes=["c"], start_time=0.0, end_time=0.45)
        engine = SemanticsEngine(_simple_system([node]), scheduler=scheduler)
        engine.run_until(1.0)
        assert engine.stats.dropped_firings == 5
        assert engine.stats.node_firings == 6

    def test_mode_switches_counted(self):
        sim = ToySimulation(build_toy_system(), initial_x=0.0)
        sim.run(1.0)
        assert sim.engine.stats.mode_switches >= 1


class TestListeners:
    def test_listener_receives_events(self):
        events = []

        class Listener:
            def on_node_fired(self, time, node, outputs, enabled):
                events.append(("fired", node.name))

            def on_mode_switch(self, time, module, previous, new, reason):
                events.append(("switch", module))

            def on_environment_input(self, time, topic, value):
                events.append(("env", topic))

        system = build_toy_system()
        engine = SemanticsEngine(system, listeners=[Listener()])
        engine.set_input("state", 0.0)
        engine.run_until(0.2)
        kinds = {kind for kind, _ in events}
        assert {"fired", "env", "switch"} <= kinds
