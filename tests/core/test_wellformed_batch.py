"""Batched well-formedness falsification: identical to the scalar checks.

The checker's batch plane (structure-of-arrays rollouts, one-shot
reachability, flag-level φ verdicts) must reproduce the scalar loops
exactly: the same sampled states, bit-identical rollout trajectories, and
the same check verdicts and failure details.
"""

import numpy as np
import pytest

from repro.apps.modules import DroneClosedLoopModel, build_safe_motion_primitive
from repro.control import AggressiveTracker
from repro.core import CheckerOptions, WellFormednessChecker
from repro.dynamics import BoundedDoubleIntegrator, DoubleIntegratorParams
from repro.simulation import surveillance_city

SEED = 5


@pytest.fixture(scope="module")
def drone_setup():
    world = surveillance_city()
    model = BoundedDoubleIntegrator(
        DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0)
    )
    module = build_safe_motion_primitive(world.workspace, model, AggressiveTracker())
    return world, model, module


def _fresh_model(drone_setup):
    world, model, module = drone_setup
    return DroneClosedLoopModel(module, model, world.workspace, seed=SEED)


def _checker(drone_setup, use_batch, samples=6, horizon=3.0):
    options = CheckerOptions(
        samples=samples,
        p2a_horizon=horizon,
        p2b_max_time=horizon,
        trust_certificates=False,
        use_batch=use_batch,
    )
    return WellFormednessChecker(_fresh_model(drone_setup), options)


class TestSamplerStreamEquivalence:
    def test_batch_sampling_matches_repeated_scalar_draws(self, drone_setup):
        scalar_model = _fresh_model(drone_setup)
        batch_model = _fresh_model(drone_setup)
        scalar = [scalar_model.sample_safe_state() for _ in range(8)]
        batch = batch_model.sample_safe_state_batch(8)
        assert [s.as_tuple() for s in scalar] == [s.as_tuple() for s in batch]
        scalar_safer = [scalar_model.sample_safer_state() for _ in range(8)]
        batch_safer = batch_model.sample_safer_state_batch(8)
        assert [s.as_tuple() for s in scalar_safer] == [s.as_tuple() for s in batch_safer]


class TestRolloutEquivalence:
    def test_batched_rollouts_are_bit_identical(self, drone_setup):
        model = _fresh_model(drone_setup)
        starts = model.sample_safe_state_batch(5)
        scalar = [model.rollout_under_safe_controller(s, 2.0) for s in starts]
        batch = model.rollout_under_safe_controller_batch(starts, 2.0)
        assert len(scalar) == len(batch)
        for scalar_traj, batch_traj in zip(scalar, batch):
            assert len(scalar_traj) == len(batch_traj)
            for a, b in zip(scalar_traj, batch_traj):
                assert a.as_tuple() == b.as_tuple()

    def test_flag_rollouts_match_scalar_predicates(self, drone_setup):
        world, model, module = drone_setup
        flag_model = _fresh_model(drone_setup)
        scalar_model = _fresh_model(drone_setup)
        starts, flags = flag_model.rollout_safe_flags_batch(4, 2.0)
        scalar_starts = [scalar_model.sample_safe_state() for _ in range(4)]
        assert [s.as_tuple() for s in starts] == [s.as_tuple() for s in scalar_starts]
        for start, sample_flags in zip(scalar_starts, flags):
            visited = scalar_model.rollout_under_safe_controller(start, 2.0)
            expected = [module.spec.safe_spec.contains(state) for state in visited]
            assert [bool(f) for f in sample_flags] == expected

    def test_worst_case_batch_matches_scalar(self, drone_setup):
        model = _fresh_model(drone_setup)
        states = model.sample_safer_state_batch(16)
        batch = model.worst_case_stays_safe_batch(states, 0.2)
        scalar = [model.worst_case_stays_safe(state, 0.2) for state in states]
        assert [bool(b) for b in batch] == scalar


class TestCheckerEquivalence:
    @pytest.mark.parametrize("check", ["check_p2a", "check_p2b", "check_p3"])
    def test_batch_and_scalar_checks_agree(self, drone_setup, check):
        _, _, module = drone_setup
        scalar = getattr(_checker(drone_setup, use_batch=False), check)(module.spec)
        batch = getattr(_checker(drone_setup, use_batch=True), check)(module.spec)
        assert (scalar.name, scalar.passed, scalar.evidence, scalar.detail) == (
            batch.name,
            batch.passed,
            batch.evidence,
            batch.detail,
        )

    def test_p3_verdict_and_failure_detail_identical(self, drone_setup):
        """Force a P3 failure: a 2Δ horizon long enough to escape φ_safe."""
        world, model, module = drone_setup
        spec = module.spec
        results = {}
        for use_batch in (False, True):
            checker = WellFormednessChecker(
                _fresh_model(drone_setup),
                CheckerOptions(
                    samples=40,
                    trust_certificates=False,
                    use_batch=use_batch,
                ),
            )
            # A spec twin with a huge Δ makes Reach(s, *, 2Δ) escape for
            # some sample, exercising the failing branch of both planes.
            import dataclasses

            wide = dataclasses.replace(spec, delta=3.0)
            results[use_batch] = checker.check_p3(wide)
        scalar, batch = results[False], results[True]
        assert not scalar.passed
        assert (scalar.passed, scalar.evidence, scalar.detail) == (
            batch.passed,
            batch.evidence,
            batch.detail,
        )

    @pytest.mark.parametrize("check", ["check_p2a", "check_p2b"])
    def test_trajectory_level_batch_plane_agrees(self, drone_setup, check):
        """Models with trajectory hooks but no flag hooks hit the middle plane."""
        _, _, module = drone_setup
        inner = _fresh_model(drone_setup)

        class TrajectoryOnly:
            """Exposes sample/rollout batch hooks, hides the flags hooks."""

            sample_safe_state = inner.sample_safe_state
            sample_safer_state = inner.sample_safer_state
            sample_safe_state_batch = staticmethod(inner.sample_safe_state_batch)
            sample_safer_state_batch = staticmethod(inner.sample_safer_state_batch)
            rollout_under_safe_controller = staticmethod(inner.rollout_under_safe_controller)
            rollout_under_safe_controller_batch = staticmethod(
                inner.rollout_under_safe_controller_batch
            )
            worst_case_stays_safe = staticmethod(inner.worst_case_stays_safe)

        options = CheckerOptions(
            samples=6, p2a_horizon=3.0, p2b_max_time=3.0, trust_certificates=False
        )
        scalar = getattr(_checker(drone_setup, use_batch=False), check)(module.spec)
        batch = getattr(WellFormednessChecker(TrajectoryOnly(), options), check)(module.spec)
        assert (scalar.passed, scalar.evidence, scalar.detail) == (
            batch.passed,
            batch.evidence,
            batch.detail,
        )

    def test_scalar_fallback_without_batch_hooks(self, drone_setup):
        """Models without batch hooks (the protocol minimum) still work."""
        _, _, module = drone_setup
        inner = _fresh_model(drone_setup)

        class ScalarOnly:
            sample_safe_state = inner.sample_safe_state
            sample_safer_state = inner.sample_safer_state
            rollout_under_safe_controller = staticmethod(inner.rollout_under_safe_controller)
            worst_case_stays_safe = staticmethod(inner.worst_case_stays_safe)

        checker = WellFormednessChecker(
            ScalarOnly(),
            CheckerOptions(samples=3, p2a_horizon=1.0, p2b_max_time=1.0, trust_certificates=False),
        )
        result = checker.check_p2a(module.spec)
        assert result.evidence == "falsification"

    def test_use_batch_false_bypasses_hooks(self, drone_setup):
        _, _, module = drone_setup
        model = _fresh_model(drone_setup)
        calls = {"batch": 0}
        original = model.rollout_safe_flags_batch

        def counting(count, duration):
            calls["batch"] += 1
            return original(count, duration)

        model.rollout_safe_flags_batch = counting
        checker = WellFormednessChecker(
            model,
            CheckerOptions(
                samples=2, p2a_horizon=0.5, p2b_max_time=0.5,
                trust_certificates=False, use_batch=False,
            ),
        )
        checker.check_p2a(module.spec)
        assert calls["batch"] == 0
