"""The deadline monitor: grace-bounded recovery instead of instantaneous validity.

φ_plan_deadline-style properties tolerate transients shorter than the RTA
recovery bound Δ; these tests pin the streak state machine — one
violation per streak, stamped at the first sample past the deadline, with
the windowed capture/flush path byte-identical to per-step checks even
when a streak spans window boundaries.
"""

import pytest

from repro.core import DeadlineMonitor, SafetySpec


class FakeEngine:
    """current_time/read_topic stub — enough surface for the monitor."""

    def __init__(self, time, value):
        self.current_time = time
        self._value = value

    def read_topic(self, name):
        return self._value


def _monitor(grace=1.0, **kw):
    return DeadlineMonitor(
        name="deadline", topic="signal", spec=SafetySpec("pos", lambda x: x > 0), grace=grace, **kw
    )


def _feed(monitor, samples):
    """Run the per-step path over (time, value) samples; return violations."""
    out = []
    for time, value in samples:
        violation = monitor.check(FakeEngine(time, value))
        if violation is not None:
            out.append(violation)
    return out


class TestDeadlineSemantics:
    def test_grace_validation(self):
        with pytest.raises(ValueError):
            _monitor(grace=-0.1)

    def test_transient_shorter_than_grace_is_tolerated(self):
        monitor = _monitor(grace=1.0)
        violations = _feed(
            monitor, [(0.0, 1.0), (0.5, -1.0), (1.0, -1.0), (1.5, 1.0), (2.0, -1.0)]
        )
        assert violations == []
        assert monitor.result.ok

    def test_sustained_failure_fires_once_per_streak(self):
        monitor = _monitor(grace=1.0)
        samples = [(t / 2.0, -1.0) for t in range(10)]  # bad from 0.0 to 4.5
        violations = _feed(monitor, samples)
        assert len(violations) == 1
        # First sample strictly past bad_since + grace: 0.0 + 1.0 → 1.5.
        assert violations[0].time == pytest.approx(1.5)
        assert "more than 1 s" in violations[0].message

    def test_exactly_grace_is_not_a_violation(self):
        monitor = _monitor(grace=1.0)
        assert _feed(monitor, [(0.0, -1.0), (1.0, -1.0)]) == []

    def test_recovery_rearms_the_monitor(self):
        monitor = _monitor(grace=0.4)
        violations = _feed(
            monitor,
            [(0.0, -1.0), (0.5, -1.0), (1.0, 1.0), (1.5, -1.0), (2.0, -1.0)],
        )
        assert [v.time for v in violations] == [pytest.approx(0.5), pytest.approx(2.0)]

    def test_missing_values_end_the_streak_by_default(self):
        monitor = _monitor(grace=0.4)
        assert _feed(monitor, [(0.0, -1.0), (0.5, None), (1.0, -1.0)]) == []

    def test_missing_values_extend_the_streak_when_not_ignored(self):
        monitor = _monitor(grace=0.4, ignore_missing=False)
        violations = _feed(monitor, [(0.0, -1.0), (0.5, None), (1.0, None)])
        assert len(violations) == 1

    def test_reset_clears_streak_and_violations(self):
        monitor = _monitor(grace=0.4)
        _feed(monitor, [(0.0, -1.0), (0.5, -1.0)])
        monitor.reset()
        assert monitor.result.ok
        assert _feed(monitor, [(1.0, -1.0)]) == []  # fresh streak


class TestWindowedEquivalence:
    def _samples(self):
        # Two streaks, one spanning what will be a window boundary.
        values = [1.0, -1.0, -1.0, -1.0, 1.0, -1.0, -1.0, -1.0, -1.0, 1.0]
        return [(i * 0.25, v) for i, v in enumerate(values)]

    def test_capture_flush_matches_per_step_checks(self):
        samples = self._samples()
        scalar = _monitor(grace=0.4)
        expected = [(v.time, v.message) for v in _feed(scalar, samples)]
        assert expected  # the fixture actually violates

        windowed = _monitor(grace=0.4)
        flushed = []
        for serial, (time, value) in enumerate(samples):
            windowed.capture(FakeEngine(time, value), serial)
            if serial % 3 == 2:  # flush every 3 samples: streaks span windows
                flushed.extend(windowed.flush())
        flushed.extend(windowed.flush())
        assert [(v.time, v.message) for _, v in flushed] == expected
        # Serials point at the triggering sample.
        assert all(samples[serial][0] == v.time for serial, v in flushed)

    def test_flush_on_empty_window_is_cheap_noop(self):
        monitor = _monitor()
        assert monitor.flush() == []
