"""Tests for the SOTER compiler and the C-like code generator."""

import pytest

from repro.core import (
    CompilationError,
    ConstantNode,
    Program,
    SoterCompiler,
    Topic,
    WellFormednessChecker,
    compile_program,
    generate_c_source,
    generate_decision_module,
)

from .test_wellformed import ToyClosedLoop
from .toy import build_toy_module


def _toy_program(**kwargs):
    return Program(
        name=kwargs.pop("name", "toy-program"),
        topics=[Topic("state", float, None), Topic("cmd", float, 0.0)],
        modules=[build_toy_module(**kwargs)],
    )


class TestProgramValidation:
    def test_program_needs_a_name(self):
        with pytest.raises(CompilationError):
            SoterCompiler().compile(Program(name=""))

    def test_duplicate_node_names_rejected(self):
        program = Program(
            name="dup",
            nodes=[ConstantNode("n", {"a": 1}), ConstantNode("n", {"b": 2})],
        )
        with pytest.raises(CompilationError):
            SoterCompiler().compile(program)

    def test_undeclared_topics_reported_as_diagnostics(self):
        program = Program(name="p", nodes=[ConstantNode("n", {"mystery": 1})])
        result = SoterCompiler().compile(program)
        assert any("mystery" in diagnostic for diagnostic in result.diagnostics)

    def test_program_builder_helpers(self):
        program = Program(name="p")
        topic = program.declare_topic(Topic("t"))
        node = program.add_node(ConstantNode("n", {"t": 1}))
        module = program.add_module(build_toy_module())
        assert topic in program.topics
        assert node in program.nodes
        assert module in program.modules


class TestCompilation:
    def test_structural_compilation_produces_system_and_reports(self):
        result = SoterCompiler().compile(_toy_program())
        assert result.well_formed
        assert "toyRTA" in result.reports
        assert result.system.module_named("toyRTA").decision.period == pytest.approx(0.1)

    def test_strict_mode_rejects_ill_formed_module(self):
        program = _toy_program()
        program.modules[0].safe.publishes = ("other",)  # breaks P1b
        with pytest.raises(CompilationError) as excinfo:
            SoterCompiler(strict=True).compile(program)
        assert excinfo.value.diagnostics

    def test_non_strict_mode_records_failure(self):
        program = _toy_program()
        program.modules[0].safe.publishes = ("other",)
        result = SoterCompiler(strict=False).compile(program)
        assert not result.well_formed
        assert not result.report_for("toyRTA").passed

    def test_full_checker_integration(self):
        compiler = SoterCompiler(checker=WellFormednessChecker(ToyClosedLoop()))
        result = compiler.compile(_toy_program())
        assert result.well_formed
        assert result.report_for("toyRTA").result_for("P2a").passed

    def test_compile_program_wrapper(self):
        result = compile_program(_toy_program())
        assert result.system.name == "toy-program"

    def test_summary_mentions_module_status(self):
        result = SoterCompiler().compile(_toy_program())
        assert "well-formed" in result.summary()


class TestCodegen:
    def test_generated_source_contains_expected_sections(self):
        result = SoterCompiler(emit_source=True).compile(_toy_program())
        source = result.generated_source
        assert "topic table" in source
        assert "node table" in source
        assert "output_enabled" in source
        assert "toyRTA" in source
        assert "MODE_SC" in source

    def test_decision_module_codegen_matches_figure9(self):
        result = SoterCompiler().compile(_toy_program())
        source = generate_decision_module(result.system, "toyRTA")
        # The generated switch mirrors Figure 9: ttf check in AC mode,
        # φ_safer check in SC mode, then the output-enable updates.
        assert "ttf_2delta_toyRTA" in source
        assert "phi_safer_toyRTA" in source
        assert "MODE_AC" in source and "MODE_SC" in source
        assert "output_enabled" in source

    def test_generate_c_source_standalone(self):
        program = _toy_program()
        system = SoterCompiler().compile(program).system
        source = generate_c_source(program, system)
        assert source.count("void") >= 1
        assert "soter_runtime.h" in source

    def test_codegen_sanitises_identifiers(self):
        program = _toy_program()
        program.modules[0].name = "toy-RTA 2"
        system = SoterCompiler().compile(program).system
        source = generate_decision_module(system, "toy-RTA 2")
        assert "toy_RTA_2" in source
