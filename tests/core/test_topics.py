"""Unit tests for topics and the global topic valuation."""

import pytest

from repro.core import Topic, TopicBoard, TopicError, TopicRegistry


class TestTopicDeclaration:
    def test_topic_requires_name(self):
        with pytest.raises(TopicError):
            Topic(name="")

    def test_topic_accepts_matching_type(self):
        topic = Topic(name="count", value_type=int, default=0)
        assert topic.accepts(3)
        assert not topic.accepts("three")

    def test_topic_accepts_none(self):
        topic = Topic(name="count", value_type=int)
        assert topic.accepts(None)

    def test_untyped_topic_accepts_anything(self):
        topic = Topic(name="anything")
        assert topic.accepts(object())


class TestTopicRegistry:
    def test_declares_and_looks_up(self):
        registry = TopicRegistry([Topic("a"), Topic("b", value_type=int, default=1)])
        assert "a" in registry
        assert registry.get("b").default == 1
        assert set(registry.names()) == {"a", "b"}

    def test_rejects_duplicate_names(self):
        registry = TopicRegistry([Topic("a")])
        with pytest.raises(TopicError):
            registry.declare(Topic("a"))

    def test_unknown_lookup_raises(self):
        registry = TopicRegistry()
        with pytest.raises(TopicError):
            registry.get("missing")

    def test_defaults_valuation(self):
        registry = TopicRegistry([Topic("a", default=5), Topic("b")])
        assert registry.defaults() == {"a": 5, "b": None}

    def test_declare_name_helper(self):
        registry = TopicRegistry()
        registry.declare_name("speed", float, 0.0)
        assert registry.get("speed").value_type is float


class TestTopicBoard:
    def test_publish_and_read(self):
        board = TopicBoard()
        board.publish("x", 42)
        assert board.read("x") == 42
        assert board.read("missing") is None

    def test_read_many_returns_full_valuation(self):
        board = TopicBoard()
        board.publish("a", 1)
        assert board.read_many(["a", "b"]) == {"a": 1, "b": None}

    def test_typed_publish_is_checked(self):
        registry = TopicRegistry([Topic("count", value_type=int)])
        board = TopicBoard(registry=registry)
        board.publish("count", 7)
        with pytest.raises(TopicError):
            board.publish("count", "seven")

    def test_defaults_seed_the_board(self):
        registry = TopicRegistry([Topic("count", value_type=int, default=9)])
        board = TopicBoard(registry=registry)
        assert board.read("count") == 9

    def test_undeclared_topics_are_untyped(self):
        registry = TopicRegistry([Topic("count", value_type=int)])
        board = TopicBoard(registry=registry)
        board.publish("freeform", {"anything": True})
        assert board.read("freeform") == {"anything": True}

    def test_snapshot_is_a_copy(self):
        board = TopicBoard()
        board.publish("x", 1)
        snapshot = board.snapshot()
        board.publish("x", 2)
        assert snapshot["x"] == 1

    def test_publish_many(self):
        board = TopicBoard()
        board.publish_many({"a": 1, "b": 2})
        assert board.read("a") == 1 and board.read("b") == 2
