"""Unit tests for safety specifications."""

from repro.core import SafetySpec, always_safe, never_safe


class TestSafetySpec:
    def test_contains_evaluates_predicate(self):
        spec = SafetySpec("positive", lambda x: x > 0)
        assert spec.contains(1)
        assert not spec.contains(-1)

    def test_none_is_never_safe(self):
        assert not always_safe().contains(None)

    def test_call_syntax(self):
        spec = SafetySpec("positive", lambda x: x > 0)
        assert spec(2)

    def test_intersection(self):
        a = SafetySpec("gt0", lambda x: x > 0)
        b = SafetySpec("lt10", lambda x: x < 10)
        both = a.intersect(b)
        assert both.contains(5)
        assert not both.contains(-1)
        assert not both.contains(20)
        assert "gt0" in both.name and "lt10" in both.name

    def test_negate(self):
        spec = SafetySpec("gt0", lambda x: x > 0)
        complement = spec.negate()
        assert complement.contains(-1)
        assert not complement.contains(1)

    def test_trivial_specs(self):
        assert always_safe().contains(object())
        assert not never_safe().contains(object())
