"""Tests for RTA system composition (Section IV, Theorem 4.1 prerequisites)."""

import pytest

from repro.core import (
    CompositionError,
    ConstantNode,
    Program,
    RTASystem,
    SoterCompiler,
    Topic,
    compose_all,
)

from .toy import build_toy_module, build_toy_system


def _compile_single(name, module):
    program = Program(
        name=name,
        topics=[Topic("state", float, None), Topic("cmd", float, 0.0)],
        modules=[module],
    )
    return SoterCompiler(strict=True).compile(program).system


class TestSystemAttributes:
    def test_all_nodes_includes_generated_dm(self):
        system = build_toy_system()
        names = {node.name for node in system.all_nodes()}
        assert {"toy.ac", "toy.sc", "toyRTA.dm"} <= names

    def test_ac_and_sc_maps(self):
        system = build_toy_system()
        assert system.ac_nodes() == {"toyRTA.dm": "toy.ac"}
        assert system.sc_nodes() == {"toyRTA.dm": "toy.sc"}

    def test_output_and_input_topics(self):
        system = build_toy_system()
        assert "cmd" in system.output_topics()
        assert "state" in system.input_topics()

    def test_controlled_nodes(self):
        system = build_toy_system()
        assert system.controlled_nodes() == {"toy.ac", "toy.sc"}

    def test_node_lookup(self):
        system = build_toy_system()
        assert system.node_named("toy.sc").name == "toy.sc"
        with pytest.raises(KeyError):
            system.node_named("ghost")

    def test_module_lookup(self):
        system = build_toy_system()
        assert system.module_named("toyRTA").name == "toyRTA"
        with pytest.raises(KeyError):
            system.module_named("ghost")

    def test_calendar_covers_all_nodes(self):
        system = build_toy_system()
        calendar = system.build_calendar()
        assert len(calendar) == len(system.all_nodes())

    def test_describe_lists_modules(self):
        text = build_toy_system().describe()
        assert "toyRTA" in text


class TestComposition:
    def test_duplicate_node_names_rejected(self):
        system = build_toy_system()
        with pytest.raises(CompositionError):
            system.compose(build_toy_system())

    def test_output_disjointness_enforced_for_modules(self):
        module_a = build_toy_module()
        module_b = build_toy_module()
        module_b.name = "toyRTA2"
        module_b.advanced.name = "toy2.ac"
        module_b.safe.name = "toy2.sc"
        # Both modules publish on "cmd": composition must be rejected.
        program = Program(
            name="clash",
            topics=[Topic("state", float, None), Topic("cmd", float, 0.0)],
            modules=[module_a, module_b],
        )
        with pytest.raises(CompositionError):
            SoterCompiler(strict=True).compile(program)

    def test_plain_node_clashing_with_module_output_rejected(self):
        module = build_toy_module()
        program = Program(
            name="clash",
            topics=[Topic("state", float, None), Topic("cmd", float, 0.0)],
            nodes=[ConstantNode("rogue", {"cmd": 0.0}, period=0.1)],
            modules=[module],
        )
        with pytest.raises(CompositionError):
            SoterCompiler(strict=True).compile(program)

    def test_composition_of_disjoint_systems_succeeds(self):
        module_a = build_toy_module()
        module_b = build_toy_module()
        # Rename everything in module B, including its outputs.
        module_b.name = "toyRTA2"
        module_b.advanced.name = "toy2.ac"
        module_b.advanced.publishes = ("cmd2",)
        module_b.safe.name = "toy2.sc"
        module_b.safe.publishes = ("cmd2",)
        system_a = _compile_single("a", module_a)
        system_b = _compile_single("b", module_b)
        composed = system_a.compose(system_b, name="both")
        assert len(composed.modules) == 2
        assert {"cmd", "cmd2"} <= composed.output_topics()

    def test_compose_all_requires_systems(self):
        with pytest.raises(CompositionError):
            compose_all([])

    def test_validate_runs_on_construction(self):
        system = build_toy_system()
        duplicate = ConstantNode("toy.ac", {"other": 1}, period=0.1)
        with pytest.raises(CompositionError):
            RTASystem(modules=system.modules, nodes=[duplicate], topics=system.topics)
