"""Windowed (capture/flush) monitor evaluation must match the scalar path."""

import numpy as np

from repro.core import (
    ConstantNode,
    InvariantMonitor,
    MonitorSuite,
    Program,
    SafetySpec,
    SemanticsEngine,
    SoterCompiler,
    Topic,
    TopicSafetyMonitor,
)
from repro.core.decision import Mode

from .toy import build_toy_system


def _engine():
    program = Program(
        name="p",
        topics=[Topic("signal", float, None)],
        nodes=[ConstantNode("n", {"other": 1}, period=0.1)],
    )
    return SemanticsEngine(SoterCompiler().compile(program).system)


def _drive(engine, suite, samples, windowed, topic="signal"):
    """Feed (time, value) samples through either monitor path."""
    collected = []
    for time, value in samples:
        engine.current_time = time
        if value is not None:
            engine.set_input(topic, value)
        if windowed:
            suite.capture_all(engine)
        else:
            collected.extend(suite.check_all(engine))
    if windowed:
        collected.extend(suite.flush())
    return collected


SAMPLES = [
    (0.0, 5.0),
    (0.1, -1.0),
    (0.2, 3.0),
    (0.3, -2.0),
    (0.4, -3.0),
    (0.5, 1.0),
]


def _keys(violations):
    return [(v.time, v.monitor, v.message, v.state) for v in violations]


class TestTopicMonitorWindow:
    def _suites(self, batch_predicate):
        def build():
            return MonitorSuite(
                [
                    TopicSafetyMonitor(
                        "m",
                        "signal",
                        SafetySpec("pos", lambda x: x > 0, batch_predicate=batch_predicate),
                    )
                ]
            )

        return build(), build()

    def test_window_matches_scalar_without_batch_predicate(self):
        scalar_suite, windowed_suite = self._suites(None)
        scalar = _drive(_engine(), scalar_suite, SAMPLES, windowed=False)
        windowed = _drive(_engine(), windowed_suite, SAMPLES, windowed=True)
        assert _keys(scalar) == _keys(windowed)
        assert _keys(scalar_suite.violations) == _keys(windowed_suite.violations)

    def test_window_matches_scalar_with_batch_predicate(self):
        batch = lambda values: np.asarray(values) > 0
        scalar_suite, windowed_suite = self._suites(batch)
        scalar = _drive(_engine(), scalar_suite, SAMPLES, windowed=False)
        windowed = _drive(_engine(), windowed_suite, SAMPLES, windowed=True)
        assert _keys(scalar) == _keys(windowed)
        assert len(windowed) == 3

    def test_missing_values_ignored_consistently(self):
        samples = [(0.0, None), (0.1, -1.0), (0.2, None)]
        scalar_suite, windowed_suite = self._suites(None)
        engine = _engine()
        scalar = _drive(engine, scalar_suite, samples, windowed=False)
        windowed = _drive(_engine(), windowed_suite, samples, windowed=True)
        # The engine keeps the last published value, so only sample 2 differs
        # in value; both paths must agree regardless.
        assert _keys(scalar)[:1] == _keys(windowed)[:1]
        assert len(scalar) == len(windowed)

    def test_monitor_without_capture_falls_back(self):
        class LegacyMonitor:
            """A third-party monitor implementing only the scalar protocol."""

            def __init__(self):
                self.name = "legacy"
                self.result = type("R", (), {"violations": [], "ok": True, "count": 0})()
                self.checked = 0

            def check(self, engine):
                self.checked += 1
                return None

        legacy = LegacyMonitor()
        suite = MonitorSuite([legacy])
        engine = _engine()
        suite.capture_all(engine)
        suite.capture_all(engine)
        assert legacy.checked == 2  # checked immediately at capture time
        assert suite.flush() == []


class TestInvariantMonitorWindow:
    def _run(self, windowed, batch_hook):
        system = build_toy_system(seed=3)
        module = system.modules[0]

        def may_leave(x, horizon):
            return x + horizon >= 9.0

        def may_leave_batch(states, horizon):
            return np.asarray(states) + horizon >= 9.0

        monitor = InvariantMonitor(
            module=module,
            may_leave_within=may_leave,
            may_leave_within_batch=may_leave_batch if batch_hook else None,
        )
        suite = MonitorSuite([monitor])
        engine = SemanticsEngine(system)
        # Drive the state topic through safe and unsafe values while the
        # decision module sits in AC mode, then force SC mode.
        samples = [(0.05 * i, 2.0 + i * 1.2) for i in range(8)]
        violations = _drive(engine, suite, samples, windowed=windowed, topic="state")
        module.decision.mode = Mode.SC
        more = _drive(engine, suite, [(1.0, 9.5), (1.1, 2.0)], windowed=windowed, topic="state")
        return violations + more, monitor

    def test_windowed_matches_scalar(self):
        scalar, scalar_monitor = self._run(windowed=False, batch_hook=False)
        windowed, windowed_monitor = self._run(windowed=True, batch_hook=False)
        batched, batched_monitor = self._run(windowed=True, batch_hook=True)
        assert _keys(scalar) == _keys(windowed) == _keys(batched)
        assert scalar_monitor.samples == windowed_monitor.samples == batched_monitor.samples
        assert scalar  # the drive must actually produce violations
