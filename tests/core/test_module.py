"""Unit tests for RTA module declarations and regions of operation."""

import pytest

from repro.core import (
    ModuleCertificate,
    ModuleError,
    RTAModuleSpec,
    Region,
    SafetySpec,
    classify_region,
    is_consistent,
)
from repro.core.node import FunctionNode


def _controller(name, period=0.05, publishes=("cmd",), subscribes=("state",)):
    return FunctionNode(
        name, lambda now, inputs: {}, subscribes=subscribes, publishes=publishes, period=period
    )


def _spec(**overrides):
    defaults = dict(
        name="toy",
        advanced=_controller("ac"),
        safe=_controller("sc"),
        delta=0.1,
        safe_spec=SafetySpec("safe", lambda x: x > 0.0),
        safer_spec=SafetySpec("safer", lambda x: x > 2.0),
        ttf=lambda x: x <= 1.0,
        state_topics=("state",),
    )
    defaults.update(overrides)
    return RTAModuleSpec(**defaults)


class TestModuleDeclaration:
    def test_valid_declaration(self):
        spec = _spec()
        assert spec.decision_node_name == "toy.dm"
        assert spec.output_topics == ("cmd",)
        assert spec.controlled_node_names == ("ac", "sc")

    def test_delta_must_be_positive(self):
        with pytest.raises(ModuleError):
            _spec(delta=0.0)

    def test_name_required(self):
        with pytest.raises(ModuleError):
            _spec(name="")

    def test_ac_and_sc_must_differ(self):
        shared = _controller("same")
        with pytest.raises(ModuleError):
            _spec(advanced=shared, safe=shared)

    def test_state_topics_required(self):
        with pytest.raises(ModuleError):
            _spec(state_topics=())

    def test_dm_subscriptions_cover_controllers_and_state(self):
        ac = _controller("ac", subscribes=("plan", "state"))
        sc = _controller("sc", subscribes=("state", "battery"))
        spec = _spec(advanced=ac, safe=sc, state_topics=("state",))
        subs = spec.dm_subscriptions()
        assert set(subs) >= {"plan", "state", "battery"}

    def test_default_state_extractor_reads_first_topic(self):
        spec = _spec()
        assert spec.monitored_state({"state": 3.5}) == 3.5

    def test_custom_state_extractor(self):
        spec = _spec(
            state_topics=("state", "battery"),
            state_extractor=lambda inputs: (inputs.get("state"), inputs.get("battery")),
        )
        assert spec.monitored_state({"state": 1, "battery": 2}) == (1, 2)

    def test_describe_mentions_components(self):
        text = _spec().describe()
        assert "ac" in text and "sc" in text and "safe" in text


class TestCertificate:
    def test_empty_certificate_proves_nothing(self):
        certificate = ModuleCertificate()
        assert not certificate.proves_p2a
        assert not certificate.proves_p2b
        assert not certificate.proves_p3

    def test_justifications_enable_proofs(self):
        certificate = ModuleCertificate(
            p2a_justification="a", p2b_justification="b", p3_justification="c"
        )
        assert certificate.proves_p2a and certificate.proves_p2b and certificate.proves_p3


class TestRegions:
    def test_unsafe_region(self):
        assert classify_region(_spec(), -1.0) is Region.UNSAFE

    def test_safer_region(self):
        assert classify_region(_spec(), 3.0) is Region.SAFER

    def test_switching_region(self):
        assert classify_region(_spec(), 0.5) is Region.SWITCHING

    def test_nominal_region(self):
        assert classify_region(_spec(), 1.5) is Region.NOMINAL

    def test_consistency_holds_for_well_chosen_sets(self):
        spec = _spec()
        for state in (0.5, 1.5, 2.5, 3.0, -1.0):
            assert is_consistent(spec, state)

    def test_inconsistent_when_safer_intersects_switching(self):
        spec = _spec(ttf=lambda x: x <= 2.5)  # ttf true inside φ_safer
        assert not is_consistent(spec, 2.4)
