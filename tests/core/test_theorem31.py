"""End-to-end validation of Theorem 3.1 (runtime assurance invariant).

The toy 1-D module has *exact* reachability, so its ttf/φ_safer choices
satisfy the well-formedness conditions by construction.  Theorem 3.1 then
promises that, no matter what the adversarial advanced controller does,
every reachable state satisfies φ_Inv — and in particular the plant never
leaves φ_safe (never reaches the cliff).  These tests check that claim
over many adversarial behaviours, and also demonstrate that the guarantee
genuinely depends on the assumptions (removing the RTA or slowing the DM
below the rate assumed by the ttf horizon breaks it).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    InvariantMonitor,
    Program,
    SemanticsEngine,
    SoterCompiler,
    Topic,
)
from repro.core.decision import Mode

from .toy import (
    CLIFF,
    MAX_SPEED,
    AdversarialController,
    ToySimulation,
    build_toy_module,
    build_toy_system,
)


class TestRuntimeAssuranceTheorem:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_phi_safe_never_violated_under_adversarial_ac(self, seed):
        """Theorem 3.1: the RTA-protected plant never reaches the cliff."""
        sim = ToySimulation(build_toy_system(seed=seed), initial_x=0.0)
        sim.run(20.0)
        assert sim.max_position() < CLIFF

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        delta=st.sampled_from([0.05, 0.1, 0.2]),
        initial_x=st.floats(min_value=0.0, max_value=6.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_phi_safe_holds_for_varied_delta_and_start(self, seed, delta, initial_x):
        sim = ToySimulation(build_toy_system(delta=delta, seed=seed), initial_x=initial_x)
        sim.run(10.0)
        assert sim.max_position() < CLIFF

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_invariant_phi_inv_holds_throughout(self, seed):
        """φ_Inv (the inductive invariant of the theorem) holds at every sample."""
        system = build_toy_system(seed=seed)
        module = system.modules[0]
        monitor = InvariantMonitor(
            module=module,
            # Exact reach for the 1-D plant: positions within |v|·h of x.
            may_leave_within=lambda x, horizon: x + MAX_SPEED * horizon >= CLIFF,
        )
        sim = ToySimulation(system, initial_x=0.0)
        # Interleave running and monitoring at every discrete step.
        while True:
            next_time = sim.engine.peek_next_time()
            if next_time is None or next_time > 10.0:
                break
            command = sim.engine.read_topic("cmd") or 0.0
            sim.x += max(-MAX_SPEED, min(MAX_SPEED, command)) * (next_time - sim._last_time)
            sim._last_time = next_time
            sim.engine.set_input("state", sim.x)
            sim.history.append(sim.x)
            sim.engine.step()
            assert monitor.check(sim.engine) is None
        assert monitor.samples > 0

    def test_control_returns_to_ac_after_recovery(self):
        """The paper's novel reverse switch: SC hands control back to AC."""
        sim = ToySimulation(build_toy_system(seed=1), initial_x=0.0)
        sim.run(30.0)
        dm = sim.decision
        assert len(dm.disengagements) >= 1
        assert len(dm.reengagements) >= 2  # initial engage + at least one recovery

    def test_ac_used_most_of_the_time(self):
        """Safety is not bought by keeping the SC in control permanently."""
        sim = ToySimulation(build_toy_system(seed=2), initial_x=0.0)
        sim.run(30.0)
        fraction = sim.decision.time_fraction_in_mode(Mode.AC, 0.0, 30.0)
        assert fraction > 0.5


class TestGuaranteeDependsOnAssumptions:
    def test_unprotected_adversary_reaches_the_cliff(self):
        """Without the RTA module the adversarial controller goes over the cliff."""
        program = Program(
            name="unprotected",
            topics=[Topic("state", float, None), Topic("cmd", float, 0.0)],
            nodes=[AdversarialController(seed=3, bias=1.0)],
        )
        system = SoterCompiler().compile(program).system
        engine = SemanticsEngine(system)
        x, last = 0.0, 0.0
        crossed = False
        while True:
            next_time = engine.peek_next_time()
            if next_time is None or next_time > 20.0:
                break
            command = engine.read_topic("cmd") or 0.0
            x += max(-MAX_SPEED, min(MAX_SPEED, command)) * (next_time - last)
            last = next_time
            engine.set_input("state", x)
            if x >= CLIFF:
                crossed = True
                break
            engine.step()
        assert crossed

    def test_too_slow_dm_breaks_the_guarantee(self):
        """If the DM runs slower than the ttf horizon assumes, safety can be lost.

        The toy module's ttf uses a 2Δ lookahead with Δ = 0.1 s; compiling
        a variant whose DM runs at 1 s (with the *same* ttf) violates P1a,
        and an adversary can then cross the cliff between DM samples.
        """
        module = build_toy_module(delta=0.1, seed=4)
        # Forge an ill-formed variant: same predicates but a 10x slower DM.
        module.delta = 1.0
        module.advanced.period = 0.5
        module.safe.period = 0.5
        program = Program(
            name="illformed",
            topics=[Topic("state", float, None), Topic("cmd", float, 0.0)],
            modules=[module],
        )
        system = SoterCompiler(strict=False).compile(program).system
        violated = False
        for seed in range(5):
            random.seed(seed)
            sim = ToySimulation(system, initial_x=8.0)
            for node in system.all_nodes():
                node.reset()
            sim.run(20.0)
            if sim.max_position() >= CLIFF:
                violated = True
                break
        assert violated
