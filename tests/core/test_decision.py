"""Unit tests for the generated decision module (Figure 9 switching logic)."""

import pytest

from repro.core import DecisionModule, Mode, RTAModuleSpec, SafetySpec
from repro.core.node import FunctionNode


def _controller(name: str) -> FunctionNode:
    return FunctionNode(
        name,
        lambda now, inputs: {"cmd": 0},
        subscribes=("state",),
        publishes=("cmd",),
        period=0.05,
    )


def _spec(safe_above=0.0, safer_above=2.0, ttf_below=1.0, delta=0.1) -> RTAModuleSpec:
    """A 1-D toy module: the monitored state is a scalar 'distance to danger'."""
    return RTAModuleSpec(
        name="toy",
        advanced=_controller("toy.ac"),
        safe=_controller("toy.sc"),
        delta=delta,
        safe_spec=SafetySpec("safe", lambda x: x > safe_above),
        safer_spec=SafetySpec("safer", lambda x: x > safer_above),
        ttf=lambda x: x <= ttf_below,
        state_topics=("state",),
    )


class TestSwitchingLogic:
    def test_initial_mode_is_sc(self):
        dm = DecisionModule(_spec())
        assert dm.mode is Mode.SC

    def test_period_equals_delta(self):
        spec = _spec(delta=0.25)
        dm = DecisionModule(spec)
        assert dm.period == pytest.approx(0.25)

    def test_subscribes_to_controller_inputs_and_state(self):
        dm = DecisionModule(_spec())
        assert "state" in dm.subscribes

    def test_sc_to_ac_when_in_safer(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 5.0})
        assert dm.mode is Mode.AC
        assert len(dm.switches) == 1
        assert not dm.switches[0].is_disengagement

    def test_sc_stays_sc_outside_safer(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 1.5})
        assert dm.mode is Mode.SC
        assert dm.switches == []

    def test_ac_to_sc_when_ttf_triggers(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 5.0})  # -> AC
        dm.step(0.1, {"state": 0.5})  # ttf triggers -> SC
        assert dm.mode is Mode.SC
        assert dm.disengagements and dm.disengagements[0].time == pytest.approx(0.1)

    def test_ac_stays_ac_when_safe_for_2delta(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 5.0})
        dm.step(0.1, {"state": 1.5})  # not in safer, but ttf false -> stay AC
        assert dm.mode is Mode.AC

    def test_missing_state_forces_sc(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 5.0})
        dm.step(0.1, {"state": None})
        assert dm.mode is Mode.SC
        assert dm.missing_state_evaluations == 1

    def test_reset_restores_initial_mode_and_clears_history(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 5.0})
        dm.reset()
        assert dm.mode is Mode.SC
        assert dm.switches == []
        assert dm.evaluations == 0

    def test_decide_is_pure(self):
        dm = DecisionModule(_spec())
        mode, reason = dm.decide(5.0)
        assert mode is Mode.AC and "safer" in reason
        assert dm.mode is Mode.SC  # decide() does not mutate


class TestModeAccounting:
    def test_mode_intervals_cover_the_horizon(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 5.0})   # SC -> AC at t=0
        dm.step(1.0, {"state": 0.5})   # AC -> SC at t=1
        intervals = dm.mode_intervals(0.0, 2.0)
        total = sum(end - start for start, end, _ in intervals)
        assert total == pytest.approx(2.0)

    def test_time_fraction_in_mode(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 5.0})
        dm.step(1.0, {"state": 0.5})
        ac_fraction = dm.time_fraction_in_mode(Mode.AC, 0.0, 2.0)
        sc_fraction = dm.time_fraction_in_mode(Mode.SC, 0.0, 2.0)
        assert ac_fraction == pytest.approx(0.5)
        assert sc_fraction == pytest.approx(0.5)

    def test_empty_interval_fraction_is_zero(self):
        dm = DecisionModule(_spec())
        assert dm.time_fraction_in_mode(Mode.AC, 1.0, 1.0) == 0.0

    def test_invalid_interval_raises(self):
        dm = DecisionModule(_spec())
        with pytest.raises(ValueError):
            dm.mode_intervals(2.0, 1.0)

    def test_reengagements_listed_separately(self):
        dm = DecisionModule(_spec())
        dm.step(0.0, {"state": 5.0})
        dm.step(0.1, {"state": 0.5})
        dm.step(0.2, {"state": 5.0})
        assert len(dm.disengagements) == 1
        assert len(dm.reengagements) == 2
