"""A tiny 1-D RTA system used by the core semantics / theorem tests.

The plant is a point moving on a line toward a cliff at ``x = cliff``:
its velocity is whatever the enabled controller last commanded (bounded to
[-1, 1] m/s).  The advanced controller is adversarial (it may command full
speed toward the cliff); the safe controller always retreats.  Because the
dynamics are this simple, the exact reachable set is ``[x - t, x + t]``,
so the module's ttf / φ_safer choices are exact rather than approximate —
which makes the toy ideal for validating Theorem 3.1 end to end.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core import (
    DecisionModule,
    Program,
    RTAModuleSpec,
    RTASystem,
    SafetySpec,
    SemanticsEngine,
    SoterCompiler,
    Topic,
)
from repro.core.node import FunctionNode, Node

CLIFF = 9.0
MAX_SPEED = 1.0


class AdversarialController(Node):
    """The untrusted AC: commands a random (often cliff-ward) velocity."""

    def __init__(self, seed: int = 0, period: float = 0.05, bias: float = 0.6) -> None:
        super().__init__("toy.ac", subscribes=("state",), publishes=("cmd",), period=period)
        self.seed = seed
        self.bias = bias
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def step(self, now, inputs):
        # Mostly drive toward the cliff, sometimes randomly.
        if self._rng.random() < self.bias:
            return {"cmd": MAX_SPEED}
        return {"cmd": self._rng.uniform(-MAX_SPEED, MAX_SPEED)}


class RetreatController(Node):
    """The certified SC: always drives away from the cliff."""

    def __init__(self, period: float = 0.05) -> None:
        super().__init__("toy.sc", subscribes=("state",), publishes=("cmd",), period=period)

    def step(self, now, inputs):
        return {"cmd": -MAX_SPEED}


def build_toy_module(delta: float = 0.1, seed: int = 0, safer_margin: float = 0.2) -> RTAModuleSpec:
    """The toy RTA module with exact reachability-based predicates."""
    two_delta = 2.0 * delta
    safe = SafetySpec("x<cliff", lambda x: x < CLIFF)
    safer = SafetySpec("x<cliff-2Δ", lambda x: x < CLIFF - two_delta * MAX_SPEED - safer_margin)
    return RTAModuleSpec(
        name="toyRTA",
        advanced=AdversarialController(seed=seed),
        safe=RetreatController(),
        delta=delta,
        safe_spec=safe,
        safer_spec=safer,
        ttf=lambda x: x + two_delta * MAX_SPEED >= CLIFF,
        state_topics=("state",),
    )


def build_toy_system(delta: float = 0.1, seed: int = 0, extra_nodes: Optional[List[Node]] = None) -> RTASystem:
    """Compile the toy module (plus optional extra nodes) into an RTA system."""
    program = Program(
        name="toy-program",
        topics=[Topic("state", float, None), Topic("cmd", float, 0.0)],
        nodes=list(extra_nodes or []),
        modules=[build_toy_module(delta=delta, seed=seed)],
    )
    return SoterCompiler(strict=True).compile(program).system


@dataclass
class ToySimulation:
    """Co-simulates the 1-D plant with the compiled toy system."""

    system: RTASystem
    initial_x: float = 0.0
    history: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.engine = SemanticsEngine(self.system)
        self.x = self.initial_x
        self._last_time = 0.0
        self.engine.set_input("state", self.x)

    @property
    def decision(self) -> DecisionModule:
        return self.system.modules[0].decision

    def run(self, duration: float) -> None:
        """Advance the closed loop until ``duration`` seconds of virtual time."""
        while True:
            next_time = self.engine.peek_next_time()
            if next_time is None or next_time > duration + 1e-12:
                break
            # Plant integration between discrete steps: x' = cmd (bounded).
            command = self.engine.read_topic("cmd") or 0.0
            command = max(-MAX_SPEED, min(MAX_SPEED, float(command)))
            self.x += command * (next_time - self._last_time)
            self._last_time = next_time
            self.engine.set_input("state", self.x)
            self.history.append(self.x)
            self.engine.step()

    def max_position(self) -> float:
        return max(self.history) if self.history else self.initial_x
