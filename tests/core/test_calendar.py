"""Unit and property tests for the calendar (time-table) machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Calendar, FunctionNode, SchedulingError, hyperperiod


def _node(name, period, offset=0.0):
    return FunctionNode(name, lambda now, inputs: {}, period=period, offset=offset)


class TestCalendarBasics:
    def test_next_time_is_earliest_offset(self):
        calendar = Calendar([_node("a", 0.1), _node("b", 0.25, offset=0.05)])
        assert calendar.next_time() == 0.0
        assert calendar.due_nodes(0.0) == ["a"]

    def test_empty_calendar_has_no_next_time(self):
        assert Calendar([]).next_time() is None

    def test_duplicate_node_rejected(self):
        calendar = Calendar([_node("a", 0.1)])
        with pytest.raises(SchedulingError):
            calendar.add_node(_node("a", 0.2))

    def test_reschedule_advances_by_period(self):
        calendar = Calendar([_node("a", 0.1)])
        calendar.reschedule("a")
        assert calendar.nominal_time_of("a") == pytest.approx(0.1)
        calendar.reschedule("a")
        assert calendar.nominal_time_of("a") == pytest.approx(0.2)

    def test_reschedule_unknown_node(self):
        calendar = Calendar([])
        with pytest.raises(SchedulingError):
            calendar.reschedule("ghost")

    def test_negative_jitter_rejected(self):
        calendar = Calendar([_node("a", 0.1)])
        with pytest.raises(SchedulingError):
            calendar.reschedule("a", jitter=-0.1)

    def test_jitter_delays_effective_time_only(self):
        calendar = Calendar([_node("a", 0.1)])
        calendar.reschedule("a", jitter=0.03)
        assert calendar.nominal_time_of("a") == pytest.approx(0.1)
        assert calendar.effective_time_of("a") == pytest.approx(0.13)

    def test_not_before_skips_missed_activations(self):
        calendar = Calendar([_node("a", 0.1)])
        # The node actually ran very late (at t=0.35); its next activation
        # must not be scheduled in the past.
        calendar.reschedule("a", not_before=0.35)
        assert calendar.nominal_time_of("a") >= 0.35

    def test_due_nodes_with_equal_times(self):
        calendar = Calendar([_node("a", 0.1), _node("b", 0.2)])
        assert set(calendar.due_nodes(0.0)) == {"a", "b"}

    def test_entries_until_sorted(self):
        calendar = Calendar([_node("a", 0.2), _node("b", 0.3)])
        entries = calendar.entries_until(0.65)
        times = [entry.time for entry in entries]
        assert times == sorted(times)
        assert entries[0].time == 0.0

    def test_period_of(self):
        calendar = Calendar([_node("a", 0.25)])
        assert calendar.period_of("a") == 0.25


class TestHyperperiod:
    def test_simple_lcm(self):
        assert hyperperiod([0.1, 0.25]) == pytest.approx(0.5)

    def test_single_period(self):
        assert hyperperiod([0.3]) == pytest.approx(0.3)

    def test_empty_is_zero(self):
        assert hyperperiod([]) == 0.0

    def test_invalid_period(self):
        with pytest.raises(SchedulingError):
            hyperperiod([0.0])


class TestCalendarProperties:
    @given(
        periods=st.lists(
            st.floats(min_value=0.01, max_value=1.0, allow_nan=False), min_size=1, max_size=4
        ),
        steps=st.integers(min_value=1, max_value=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_simulated_firing_times_never_decrease(self, periods, steps):
        """Popping and rescheduling repeatedly never moves time backwards."""
        nodes = [_node(f"n{i}", round(p, 3)) for i, p in enumerate(periods)]
        calendar = Calendar(nodes)
        last = -1.0
        for _ in range(steps):
            t = calendar.next_time()
            assert t is not None
            assert t >= last - 1e-9
            for name in calendar.due_nodes(t):
                calendar.reschedule(name, not_before=t)
            last = t

    @given(period=st.floats(min_value=0.01, max_value=0.5, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_periodic_node_fires_once_per_period(self, period):
        period = round(period, 3)
        calendar = Calendar([_node("a", period)])
        times = []
        for _ in range(5):
            t = calendar.next_time()
            times.append(t)
            calendar.reschedule("a", not_before=t)
        gaps = [b - a for a, b in zip(times[:-1], times[1:])]
        assert all(gap == pytest.approx(period, abs=1e-9) for gap in gaps)
