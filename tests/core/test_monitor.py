"""Tests for the safety and invariant monitors."""

import pytest

from repro.core import (
    ConstantNode,
    InvariantMonitor,
    MonitorSuite,
    Program,
    SafetySpec,
    SemanticsEngine,
    SoterCompiler,
    Topic,
    TopicSafetyMonitor,
)
from repro.core.decision import Mode

from .toy import CLIFF, MAX_SPEED, build_toy_system


def _engine_with_topic(value):
    program = Program(
        name="p",
        topics=[Topic("signal", float, None)],
        nodes=[ConstantNode("n", {"other": 1}, period=0.1)],
    )
    engine = SemanticsEngine(SoterCompiler().compile(program).system)
    if value is not None:
        engine.set_input("signal", value)
    return engine


class TestTopicSafetyMonitor:
    def test_no_violation_when_spec_holds(self):
        monitor = TopicSafetyMonitor("m", "signal", SafetySpec("pos", lambda x: x > 0))
        engine = _engine_with_topic(5.0)
        assert monitor.check(engine) is None
        assert monitor.result.ok

    def test_violation_recorded_when_spec_fails(self):
        monitor = TopicSafetyMonitor("m", "signal", SafetySpec("pos", lambda x: x > 0))
        engine = _engine_with_topic(-1.0)
        violation = monitor.check(engine)
        assert violation is not None
        assert violation.monitor == "m"
        assert monitor.result.count == 1

    def test_missing_topic_ignored_by_default(self):
        monitor = TopicSafetyMonitor("m", "signal", SafetySpec("pos", lambda x: x > 0))
        engine = _engine_with_topic(None)
        assert monitor.check(engine) is None

    def test_missing_topic_flagged_when_requested(self):
        monitor = TopicSafetyMonitor(
            "m", "signal", SafetySpec("pos", lambda x: x > 0), ignore_missing=False
        )
        engine = _engine_with_topic(None)
        assert monitor.check(engine) is not None


class TestInvariantMonitor:
    def _monitor(self, system):
        return InvariantMonitor(
            module=system.modules[0],
            may_leave_within=lambda x, horizon: x + MAX_SPEED * horizon >= CLIFF,
        )

    def test_holds_in_sc_mode_inside_safe(self):
        system = build_toy_system()
        monitor = self._monitor(system)
        assert monitor.holds(Mode.SC, 5.0)

    def test_fails_in_sc_mode_outside_safe(self):
        system = build_toy_system()
        monitor = self._monitor(system)
        assert not monitor.holds(Mode.SC, CLIFF + 1.0)

    def test_ac_mode_requires_reach_safety(self):
        system = build_toy_system()
        monitor = self._monitor(system)
        assert monitor.holds(Mode.AC, 5.0)
        assert not monitor.holds(Mode.AC, CLIFF - 0.05)

    def test_none_state_is_vacuously_fine(self):
        system = build_toy_system()
        monitor = self._monitor(system)
        assert monitor.holds(Mode.AC, None)

    def test_check_reads_engine_topics(self):
        system = build_toy_system()
        monitor = self._monitor(system)
        engine = SemanticsEngine(system)
        engine.set_input("state", CLIFF - 0.05)
        # The module boots in SC mode; being close to the cliff is allowed
        # in SC mode as long as the state is still inside φ_safe.
        assert monitor.check(engine) is None
        system.modules[0].decision.mode = Mode.AC
        assert monitor.check(engine) is not None


class TestMonitorSuite:
    def test_check_all_aggregates(self):
        suite = MonitorSuite()
        suite.add(TopicSafetyMonitor("a", "signal", SafetySpec("pos", lambda x: x > 0)))
        suite.add(TopicSafetyMonitor("b", "signal", SafetySpec("big", lambda x: x > 100)))
        engine = _engine_with_topic(5.0)
        new = suite.check_all(engine)
        assert len(new) == 1
        assert not suite.ok
        assert len(suite.violations) == 1

    def test_summary_lists_monitors(self):
        suite = MonitorSuite([TopicSafetyMonitor("a", "signal", SafetySpec("pos", lambda x: x > 0))])
        assert "a" in suite.summary()

    def test_violations_sorted_by_time(self):
        suite = MonitorSuite()
        monitor = TopicSafetyMonitor("a", "signal", SafetySpec("pos", lambda x: x > 0))
        suite.add(monitor)
        engine = _engine_with_topic(-1.0)
        suite.check_all(engine)
        engine.current_time = 5.0
        suite.check_all(engine)
        times = [violation.time for violation in suite.violations]
        assert times == sorted(times)
