"""Fault plans travel the swarm wire: shards carry them by value.

The swarm ships workloads as (scenario name, JSON-safe overrides); a
:class:`~repro.runtime.faults.FaultPlan`'s ``encode()`` form is nested
tuples of JSON scalars, so it rides the existing override channel with no
protocol change.  These tests pin the round trip: JSON turns the tuples
into lists, ``decode_factory`` re-tuplifies them, ``FaultPlan.coerce``
rebuilds the identical plan, and the rebuilt factory runs the identical
fault sweep (plus stays hashable for the drone's warm-tester cache).
"""

import json

from repro.runtime import FaultPlan, FaultSite
from repro.swarm import protocol
from repro.testing import ExhaustiveStrategy, SystematicTester, scenario_factory


def _plan():
    return FaultPlan(
        sites=(
            FaultSite(
                kinds=("substitute", "crash"),
                windows=((0.25, 1.25), (1.25, 2.5)),
                node="motionPlanner.faultable",
            ),
        )
    )


def _wire_round_trip(factory):
    encoded = protocol.encode_factory(factory)
    return protocol.decode_factory(json.loads(json.dumps(encoded)))


class TestFaultPlanOnTheWire:
    def test_encoded_plan_survives_json_and_retuplification(self):
        plan = _plan()
        factory = scenario_factory(
            "fault-injected-planner", protected=False, fault_plan=plan.encode()
        )
        decoded = _wire_round_trip(factory)
        fault_plan = dict(decoded.overrides)["fault_plan"]
        assert FaultPlan.coerce(fault_plan) == plan

    def test_decoded_factory_is_hashable_for_the_tester_cache(self):
        factory = scenario_factory(
            "fault-injected-planner", protected=False, fault_plan=_plan().encode()
        )
        decoded = _wire_round_trip(factory)
        assert hash(decoded) == hash(_wire_round_trip(factory))
        assert {decoded: "cached"}[_wire_round_trip(factory)] == "cached"

    def test_decoded_factory_runs_the_identical_fault_sweep(self):
        factory = scenario_factory(
            "fault-injected-planner", protected=False, fault_plan=_plan().encode()
        )
        decoded = _wire_round_trip(factory)

        def sweep(f):
            strategy = ExhaustiveStrategy(max_depth=64, max_executions=64)
            report = SystematicTester(f, strategy, max_permuted=1).explore()
            return [
                (
                    record.index,
                    record.steps,
                    tuple(record.trail or ()),
                    tuple((v.time, v.monitor, v.message) for v in record.violations),
                )
                for record in report.executions
            ]

        local, remote = sweep(factory), sweep(decoded)
        assert local == remote
        assert len(local) == 9
        assert any(key[3] for key in local)  # the sweep found violations
