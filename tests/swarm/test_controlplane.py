"""The control plane state machine, driven by a fake clock.

No HTTP and no real drones here: these tests poke the pure
:class:`~repro.swarm.controlplane.ControlPlane` directly so the
self-healing escalation ladder (warn -> re-lease -> drone dead ->
session fails only with no drone left), the idempotent ingestion, and
the adaptive re-partitioning are each pinned without any real waiting.
"""

import urllib.error
import urllib.request

import pytest

from repro.swarm import protocol
from repro.swarm.controlplane import ControlPlane, ControlPlaneServer
from repro.testing.parallel import _ExhaustiveShard, _RandomShard
from repro.testing.scenarios import scenario_factory


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_plane(clock, **overrides):
    options = dict(
        heartbeat_timeout=10.0,
        warn_after=4.0,
        max_drone_strikes=2,
        max_shard_attempts=3,
        split_lagging_after=1.0,
        clock=clock,
    )
    options.update(overrides)
    return ControlPlane(**options)


def random_shard_wire(indices=(0, 1, 2)):
    return protocol.encode_shard(_RandomShard(
        factory=scenario_factory("toy-closed-loop"),
        seed=0, max_executions=len(indices), indices=tuple(indices),
        max_permuted=6, stop_at_first_violation=False,
    ))


def exhaustive_shard_wire(prefixes=((0,), (1,), (2,), (3,))):
    return protocol.encode_shard(_ExhaustiveShard(
        factory=scenario_factory("toy-closed-loop"),
        prefixes=tuple(prefixes), max_depth=3, max_executions=100,
        max_permuted=6, stop_at_first_violation=False,
    ))


def wire_record(index, trail=None, violating=False):
    violations = []
    if violating:
        violations = [{"time": 0.0, "monitor": "phi", "message": "boom", "state": None}]
    return {"index": index, "steps": 1, "violations": violations,
            "trail": trail, "worker": None}


def result(record, coverage=None):
    return {"record": record, "coverage": coverage}


class TestLeaseLifecycle:
    def test_happy_path_to_finished(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire((0, 1))])
        grant = plane.request_lease("d0")
        assert grant["session"] == session
        assert grant["shard"]["kind"] == "random"
        plane.ingest(session, grant["lease"],
                     results=[result(wire_record(0), [["v", "m", "r", 2]]),
                              result(wire_record(1))],
                     done=True)
        report = plane.session_report(session)
        assert report["finished"] and report["failed"] is None
        assert [r["index"] for r in report["records"]] == [0, 1]
        assert report["coverage"] == [["v", "m", "r", 2]]
        assert report["shards"][0]["status"] == "done"

    def test_idle_fleet_gets_no_lease(self):
        plane = make_plane(FakeClock())
        assert plane.request_lease("d0") is None

    def test_empty_session_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="at least one shard"):
            make_plane(FakeClock()).create_session([])


class TestIdempotentIngestion:
    def test_duplicate_record_and_its_coverage_dropped(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire((0, 1))])
        grant = plane.request_lease("d0")
        rows = [["v", "m", "r", 1]]
        plane.ingest(session, grant["lease"], results=[result(wire_record(0), rows)])
        plane.ingest(session, grant["lease"], results=[result(wire_record(0), rows),
                                                       result(wire_record(1), rows)])
        report = plane.session_report(session)
        assert report["duplicates"] == 1
        assert len(report["records"]) == 2
        assert report["coverage"] == [["v", "m", "r", 2]]  # once per accepted record

    def test_zombie_exhaustive_records_dedupe_by_trail_after_relase(self):
        # The zombie's lease is gone and its shard re-leased, so no shard
        # resolves for it — identity must still come out trail-keyed.
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([exhaustive_shard_wire()])
        zombie = plane.request_lease("dz")
        clock.advance(11.0)  # past heartbeat_timeout: lease expires
        replacement = plane.request_lease("dr")
        assert replacement is not None and replacement["lease"] != zombie["lease"]
        # Zombie flushes a record for trail (0, 1); its ingest is accepted
        # (first copy) but flagged as coming from a stale lease.
        directives = plane.ingest(session, zombie["lease"],
                                  results=[result(wire_record(0, trail=[0, 1]))])
        assert directives["lease_valid"] is False
        # The replacement runs the same subtree: same trail, different index.
        plane.ingest(session, replacement["lease"],
                     results=[result(wire_record(7, trail=[0, 1]))], done=True)
        report = plane.session_report(session)
        assert report["duplicates"] == 1
        assert len(report["records"]) == 1


class TestPopulationStatsIngestion:
    def test_per_lease_deltas_sum_into_the_session(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire((0,)), random_shard_wire((1,))])
        first = plane.request_lease("d0")
        second = plane.request_lease("d1")
        plane.ingest(session, first["lease"], results=[result(wire_record(0))],
                     done=True,
                     population_stats={"executions": 1, "live_runs": 1,
                                       "delta_restores": 3})
        plane.ingest(session, second["lease"], results=[result(wire_record(1))],
                     done=True,
                     population_stats={"executions": 1, "compacted": 1,
                                       "delta_restores": 2})
        report = plane.session_report(session)
        assert report["population_stats"] == {
            "executions": 2, "live_runs": 1, "compacted": 1, "delta_restores": 5,
        }

    def test_sessions_without_population_shards_report_empty_stats(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire((0,))])
        grant = plane.request_lease("d0")
        plane.ingest(session, grant["lease"], results=[result(wire_record(0))],
                     done=True)
        assert plane.session_report(session)["population_stats"] == {}

    def test_malformed_stats_rejected(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire((0,))])
        grant = plane.request_lease("d0")
        with pytest.raises(protocol.ProtocolError, match="population stats"):
            plane.ingest(session, grant["lease"], population_stats=["not", "a", "dict"])


class TestEscalationLadder:
    def test_warn_then_expire_then_requeue(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire()])
        grant = plane.request_lease("d0")
        clock.advance(5.0)  # past warn_after, before heartbeat_timeout
        plane.sweep()
        report = plane.session_report(session)
        assert any(event.startswith("warn:") for event in report["events"])
        assert plane.status()["drones"]["d0"]["lagging"] is True
        assert report["shards"][0]["status"] == "leased"  # warned, not expired
        clock.advance(6.0)  # now past heartbeat_timeout
        plane.sweep()
        report = plane.session_report(session)
        assert any(event.startswith("re-lease:") for event in report["events"])
        assert report["shards"][0]["status"] == "queued"
        assert report["shards"][0]["attempts"] == 1
        assert plane.status()["drones"]["d0"]["strikes"] == 1
        # The shard is grantable again — to anyone, including the striker.
        regrant = plane.request_lease("d1")
        assert regrant is not None and regrant["lease"] != grant["lease"]

    def test_heartbeat_clears_the_warning(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire()])
        grant = plane.request_lease("d0")
        clock.advance(5.0)
        plane.sweep()
        directives = plane.heartbeat(session, grant["lease"], executions_done=1)
        assert directives == {"stop": False, "lease_valid": True}
        assert plane.status()["drones"]["d0"]["lagging"] is False
        clock.advance(9.0)  # within timeout of the heartbeat: still alive
        plane.sweep()
        assert plane.session_report(session)["shards"][0]["status"] == "leased"

    def test_drone_buried_after_repeated_expiries(self):
        clock = FakeClock()
        plane = make_plane(clock)
        plane.create_session([random_shard_wire()])
        for _ in range(2):  # max_drone_strikes
            assert plane.request_lease("d0") is not None
            clock.advance(11.0)
            plane.sweep()
        assert plane.status()["drones"]["d0"]["dead"] is True
        assert plane.request_lease("d0") == {"dead": True}

    def test_session_fails_only_when_no_live_drone_remains(self):
        clock = FakeClock()
        plane = make_plane(clock, max_shard_attempts=10)
        session = plane.create_session([random_shard_wire()])

        def lease_then_vanish(drone_id):
            assert plane.request_lease(drone_id) is not None
            clock.advance(11.0)
            plane.sweep()

        assert plane.request_lease("d0") is not None  # shard leased to d0
        assert plane.request_lease("d1") is None  # d1 registered, idle
        clock.advance(11.0)
        plane.sweep()  # expiry = d0 strike 1, shard requeued
        lease_then_vanish("d0")  # strike 2: d0 is buried
        assert plane.status()["drones"]["d0"]["dead"] is True
        # d1 is registered and alive (never struck out): the session must
        # keep waiting for it to pick up the requeued shard, not fail.
        assert plane.session_report(session)["failed"] is None
        lease_then_vanish("d1")
        assert plane.session_report(session)["failed"] is None
        lease_then_vanish("d1")  # d1's second strike: nobody is left
        assert plane.status()["drones"]["d1"]["dead"] is True
        report = plane.session_report(session)
        assert report["failed"] is not None
        assert "no live drone" in report["failed"]

    def test_shard_fails_after_max_attempts(self):
        clock = FakeClock()
        plane = make_plane(clock, max_shard_attempts=2, max_drone_strikes=100)
        session = plane.create_session([random_shard_wire()])
        for _ in range(2):
            assert plane.request_lease("d0") is not None
            clock.advance(11.0)
            plane.sweep()
        report = plane.session_report(session)
        assert report["finished"]
        assert "lease attempt" in report["failed"]

    def test_worker_error_fails_the_session(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire()])
        grant = plane.request_lease("d0")
        plane.ingest(session, grant["lease"], error="Traceback: ValueError: boom")
        report = plane.session_report(session)
        assert report["finished"]
        assert "ValueError: boom" in report["failed"]


class TestStopAtFirstViolation:
    def test_violation_cancels_queue_and_directs_stop(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session(
            [random_shard_wire((0,)), random_shard_wire((1,))],
            stop_at_first_violation=True,
        )
        grant = plane.request_lease("d0")  # second shard stays queued
        directives = plane.ingest(
            session, grant["lease"],
            results=[result(wire_record(0, violating=True))],
        )
        assert directives["stop"] is True
        statuses = {s["status"] for s in plane.session_report(session)["shards"]}
        assert "cancelled" in statuses  # the queued shard will never run
        assert plane.request_lease("d1") is None  # nothing grantable while stopping
        plane.ingest(session, grant["lease"], released=True)
        assert plane.session_report(session)["finished"]


class TestAdaptiveSplit:
    def test_idle_drone_steals_untouched_prefixes(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([exhaustive_shard_wire()])
        grant = plane.request_lease("slow")
        assert len(grant["shard"]["prefixes"]) == 4
        plane.heartbeat(session, grant["lease"], prefixes_done=1)
        clock.advance(2.0)  # past split_lagging_after
        stolen = plane.request_lease("idle")
        assert stolen is not None, "idle drone should trigger a split"
        # prefixes_done=1 -> the slow drone keeps prefixes[:2] (done + current).
        assert [tuple(p) for p in stolen["shard"]["prefixes"]] == [(2,), (3,)]
        directives = plane.heartbeat(session, grant["lease"], prefixes_done=1)
        assert directives["keep_prefixes"] == 2
        report = plane.session_report(session)
        assert any(event.startswith("split:") for event in report["events"])
        # Both halves complete; the session finishes with both shards done.
        plane.ingest(session, grant["lease"],
                     results=[result(wire_record(0, trail=[0, 0]))], done=True)
        plane.ingest(session, stolen["lease"],
                     results=[result(wire_record(0, trail=[2, 0]))], done=True)
        report = plane.session_report(session)
        assert report["finished"] and report["failed"] is None
        assert len(report["records"]) == 2 and report["duplicates"] == 0

    def test_random_shards_never_split(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire((0, 1, 2, 3))])
        grant = plane.request_lease("slow")
        plane.heartbeat(session, grant["lease"], executions_done=1)
        clock.advance(2.0)
        assert plane.request_lease("idle") is None


class TestStatus:
    def test_status_shape(self):
        clock = FakeClock()
        plane = make_plane(clock)
        session = plane.create_session([random_shard_wire()], label="smoke")
        grant = plane.request_lease("d0")
        status = plane.status()
        assert status["protocol"] == protocol.PROTOCOL_VERSION
        assert status["sessions"][session]["label"] == "smoke"
        assert status["sessions"][session]["shards"]["leased"] == 1
        assert status["drones"]["d0"]["leases_granted"] == 1
        assert status["active_leases"][0]["lease"] == grant["lease"]


class TestHttpLayer:
    def test_version_mismatch_rejected_with_400(self):
        with ControlPlaneServer(heartbeat_timeout=5.0) as server:
            body = protocol.dumps("lease", {"drone": "d0"}).replace(
                b'"v": 1', b'"v": 99')
            request = urllib.request.Request(
                server.url + "/api/v1/lease", data=body, method="POST",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5.0)
            assert excinfo.value.code == 400
            detail = protocol.loads(excinfo.value.read(), expect="response")
            assert "version mismatch" in detail["error"]

    def test_status_endpoint_serves_json(self):
        with ControlPlaneServer(heartbeat_timeout=5.0) as server:
            with urllib.request.urlopen(server.url + "/api/v1/status",
                                        timeout=5.0) as response:
                status = protocol.loads(response.read(), expect="response")
            assert status["protocol"] == protocol.PROTOCOL_VERSION
            assert status["sessions"] == {}
