"""Regression pins for the PR 9 polling fixes.

Three latent polling bugs surfaced when the swarm became a long-running
service:

* the drone's idle path slept with ``time.sleep`` — deaf to ``stop()``,
  delaying shutdown by up to a full poll interval;
* ``SwarmTester._run_session`` fetched the *full* report (all records
  serialized server-side) on every 50 ms poll tick — quadratic in
  session size;
* the control plane's lease long-poll busy-spun on ``time.sleep(0.02)``
  per handler thread instead of waiting on a condition notified when
  work is queued.
"""

import threading
import time

import pytest

from repro.swarm import controlplane as controlplane_module
from repro.swarm.controlplane import ControlPlane, ControlPlaneServer
from repro.swarm.drone import Drone, post_json
from repro.swarm.tester import SwarmTester
from repro.testing import RandomStrategy
from repro.testing.parallel import ParallelTester


def _shard():
    return {"kind": "random", "seed": 0, "indices": [0], "max_executions": 1}


class TestDroneIdleStop:
    def test_stop_during_idle_wait_returns_promptly(self):
        # A huge poll interval: if the idle path still used time.sleep,
        # run() could not return before it elapsed.
        drone = Drone(
            "http://127.0.0.1:1",
            drone_id="idle-stop-test",
            poll_interval=30.0,
            exit_when_idle=False,
        )
        drone._post = lambda path, payload: {"lease": None}

        finished = threading.Event()

        def run():
            drone.run()
            finished.set()

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        time.sleep(0.1)  # let the drone reach the idle wait
        started = time.monotonic()
        drone.stop()
        assert finished.wait(timeout=5.0)
        assert time.monotonic() - started < 1.0
        thread.join(timeout=1.0)


class TestSessionStatusPolling:
    def test_report_is_fetched_exactly_once(self, monkeypatch):
        calls = {"status": 0, "report": 0}
        real_get = controlplane_module.protocol  # anchor module import
        assert real_get is not None

        import repro.swarm.tester as tester_module

        original_get_json = tester_module.get_json

        def counting_get_json(url, path, **kw):
            if path.endswith("/status"):
                calls["status"] += 1
            elif path.endswith("/report"):
                calls["report"] += 1
            return original_get_json(url, path, **kw)

        monkeypatch.setattr(tester_module, "get_json", counting_get_json)
        tester = SwarmTester(
            "toy-closed-loop",
            strategy=RandomStrategy(seed=0, max_executions=4),
            drones=1,
        )
        report = tester.explore()
        assert len(report.executions) == 4
        assert calls["report"] == 1  # the old loop fetched it every tick
        assert calls["status"] >= 1

    def test_swarm_still_matches_the_pool(self):
        swarm = SwarmTester(
            "toy-closed-loop",
            strategy=RandomStrategy(seed=3, max_executions=6),
            drones=2,
        ).explore()
        pool = ParallelTester(
            "toy-closed-loop",
            strategy=RandomStrategy(seed=3, max_executions=6),
            workers=2,
        ).explore()
        assert [r.trail for r in swarm.executions] == [r.trail for r in pool.executions]
        assert [
            [(v.time, v.monitor, v.message) for v in r.violations]
            for r in swarm.executions
        ] == [
            [(v.time, v.monitor, v.message) for v in r.violations]
            for r in pool.executions
        ]


class TestLeaseLongPollCondition:
    def test_idle_poll_wakes_when_a_session_is_created(self):
        # An idle lease long-poll with a generous budget must be granted
        # work almost immediately after the session appears — not after
        # the next spin of a sleep loop (and with zero grants in between).
        with ControlPlaneServer() as server:
            result = {}

            def poll():
                started = time.monotonic()
                response = post_json(
                    server.url, "/api/v1/lease", {"drone": "d1", "poll": 2.0}
                )
                result["elapsed"] = time.monotonic() - started
                result["grant"] = response["lease"]

            thread = threading.Thread(target=poll, daemon=True)
            thread.start()
            time.sleep(0.3)  # the poll is now parked on the condition
            post_json(server.url, "/api/v1/session", {"shards": [_shard()]})
            thread.join(timeout=5.0)
            assert not thread.is_alive()
            assert result["grant"] is not None
            # Granted well before the 2 s poll budget expired.
            assert result["elapsed"] < 1.5

    def test_wait_for_work_wakes_on_requeue(self):
        clock = {"now": 0.0}
        plane = ControlPlane(heartbeat_timeout=1.0, clock=lambda: clock["now"])
        plane.create_session([_shard()])
        grant = plane.request_lease("d1")
        assert grant is not None
        clock["now"] = 5.0  # the lease is now expired

        woken = threading.Event()

        def waiter():
            if plane.wait_for_work(5.0):
                woken.set()

        thread = threading.Thread(target=waiter, daemon=True)
        thread.start()
        time.sleep(0.1)
        plane.sweep()  # expiry requeues the shard -> notify
        assert woken.wait(timeout=2.0)
        thread.join(timeout=1.0)

    def test_wait_for_work_times_out_quietly(self):
        plane = ControlPlane()
        started = time.monotonic()
        assert plane.wait_for_work(0.05) is False
        assert plane.wait_for_work(0.0) is False
        assert time.monotonic() - started < 1.0


class TestSessionStatusEndpoint:
    def test_status_is_lightweight_and_tracks_the_report(self):
        plane = ControlPlane()
        session_id = plane.create_session([_shard()])
        status = plane.session_status(session_id)
        assert status["finished"] is False
        assert status["records"] == 0
        assert status["shards"]["queued"] == 1
        assert "events" not in status  # counters only, no bodies

        grant = plane.request_lease("d1")
        record = {"index": 0, "steps": 1, "violations": [], "trail": [0], "worker": 0}
        plane.ingest(
            session_id,
            grant["lease"],
            results=[{"record": record, "coverage": None}],
            done=True,
        )
        status = plane.session_status(session_id)
        assert status["finished"] is True
        assert status["records"] == 1
        report = plane.session_report(session_id)
        assert len(report["records"]) == status["records"]

    def test_unknown_session_raises(self):
        plane = ControlPlane()
        from repro.swarm import protocol

        with pytest.raises(protocol.ProtocolError):
            plane.session_status("nope")
