"""The wire protocol: round trips, versioning, execution identity."""

import pytest

from repro.core.monitor import Violation
from repro.geometry import Vec3
from repro.swarm import protocol
from repro.testing.coverage import CoverageMap
from repro.testing.explorer import ExecutionRecord
from repro.testing.parallel import _ExhaustiveShard, _RandomShard
from repro.testing.scenarios import scenario_factory


def random_shard(**overrides):
    defaults = dict(
        factory=scenario_factory("toy-closed-loop", broken_ttf=True),
        seed=7,
        max_executions=20,
        indices=(3, 4, 5),
        max_permuted=6,
        stop_at_first_violation=True,
        monitor_window=2,
        reuse_instances=False,
        track_coverage=True,
    )
    defaults.update(overrides)
    return _RandomShard(**defaults)


def exhaustive_shard(**overrides):
    defaults = dict(
        factory=scenario_factory("toy-closed-loop"),
        prefixes=((0,), (1, 2)),
        max_depth=5,
        max_executions=100,
        max_permuted=6,
        stop_at_first_violation=False,
    )
    defaults.update(overrides)
    return _ExhaustiveShard(**defaults)


class TestEnvelope:
    def test_round_trip(self):
        payload = protocol.loads(protocol.dumps("status", {"ok": 1}), expect="status")
        assert payload == {"ok": 1}

    def test_version_mismatch_rejected(self):
        message = protocol.envelope("status", {})
        message["v"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(protocol.ProtocolError, match="version mismatch"):
            protocol.open_envelope(message)

    def test_wrong_type_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="expected a"):
            protocol.open_envelope(protocol.envelope("lease", {}), expect="result")

    def test_garbage_bytes_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="undecodable"):
            protocol.loads(b"\xff not json")


class TestShards:
    @pytest.mark.parametrize("shard", [random_shard(), exhaustive_shard()],
                             ids=["random", "exhaustive"])
    def test_round_trip_is_identity(self, shard):
        # Shards are frozen value objects, so == is field-wise equality.
        assert protocol.decode_shard(protocol.encode_shard(shard)) == shard

    def test_round_trip_survives_json(self):
        import json

        shard = exhaustive_shard()
        wire = json.loads(json.dumps(protocol.encode_shard(shard)))
        assert protocol.decode_shard(wire) == shard

    def test_non_registry_factory_rejected(self):
        shard = random_shard(factory=lambda: None)
        with pytest.raises(protocol.ProtocolError, match="scenario name"):
            protocol.encode_shard(shard)

    def test_json_unsafe_override_rejected(self):
        factory = scenario_factory("toy-closed-loop")
        unsafe = type(factory)(name=factory.name, overrides=(("horizon", object()),))
        with pytest.raises(protocol.ProtocolError, match="JSON-safe"):
            protocol.encode_shard(random_shard(factory=unsafe))

    @pytest.mark.parametrize(
        "shard",
        [random_shard(population_size=64), exhaustive_shard(population_size=8)],
        ids=["random", "exhaustive"],
    )
    def test_population_size_crosses_the_wire(self, shard):
        assert protocol.decode_shard(protocol.encode_shard(shard)) == shard

    @pytest.mark.parametrize("shard", [random_shard(), exhaustive_shard()],
                             ids=["random", "exhaustive"])
    def test_legacy_peer_without_population_size_decodes(self, shard):
        # Older peers never send the key: decoding must default to the
        # serial (non-population) tester, not crash.
        wire = protocol.encode_shard(shard)
        del wire["population_size"]
        assert protocol.decode_shard(wire).population_size is None

    def test_malformed_shard_rejected(self):
        with pytest.raises(protocol.ProtocolError, match="malformed shard"):
            protocol.decode_shard({"kind": "random"})
        complete_but_unknown = dict(protocol.encode_shard(random_shard()), kind="mystery")
        with pytest.raises(protocol.ProtocolError, match="unknown shard kind"):
            protocol.decode_shard(complete_but_unknown)


class TestRecords:
    def test_record_round_trip(self):
        record = ExecutionRecord(
            index=4,
            steps=17,
            violations=[Violation(time=0.5, monitor="phi", message="boom", state=3.25)],
            trail=[1, 0, 2],
            worker=1,
        )
        decoded = protocol.decode_record(protocol.encode_record(record))
        assert decoded == record

    def test_rich_violation_state_degrades_to_repr(self):
        violation = Violation(time=0.1, monitor="phi_obs", message="hit",
                              state=Vec3(1.0, 2.0, 3.0))
        decoded = protocol.decode_violation(protocol.encode_violation(violation))
        # Identity (time, monitor, message) crosses exactly; state is repr.
        assert (decoded.time, decoded.monitor, decoded.message) == (0.1, "phi_obs", "hit")
        assert isinstance(decoded.state, str) and "1.0" in decoded.state


class TestCoverage:
    def test_round_trip_preserves_counts(self):
        coverage = CoverageMap()
        coverage.record("drone0/SMP", "AC", "R4:nominal", count=3)
        coverage.record("drone1/SMP", "SC", "R3:switching")
        decoded = protocol.decode_coverage(protocol.encode_coverage(coverage))
        assert decoded.counts == coverage.counts

    def test_none_passes_through(self):
        assert protocol.encode_coverage(None) is None
        assert protocol.decode_coverage(None) is None


class TestExecutionKey:
    def test_random_keys_by_global_index(self):
        a = protocol.encode_record(ExecutionRecord(index=9, steps=3, violations=[], trail=[0]))
        b = protocol.encode_record(ExecutionRecord(index=9, steps=3, violations=[], trail=[0]))
        assert protocol.execution_key("random", a) == protocol.execution_key("random", b)

    def test_exhaustive_keys_by_trail_across_shards(self):
        # The same subtree execution run by a zombie and by the shard that
        # adaptively stole its prefix must collide — trail is identity.
        zombie = protocol.encode_record(
            ExecutionRecord(index=5, steps=3, violations=[], trail=[1, 0, 2]))
        thief = protocol.encode_record(
            ExecutionRecord(index=0, steps=3, violations=[], trail=[1, 0, 2]))
        assert protocol.execution_key("exhaustive", zombie) == \
            protocol.execution_key("exhaustive", thief)
        other = protocol.encode_record(
            ExecutionRecord(index=0, steps=3, violations=[], trail=[1, 1]))
        assert protocol.execution_key("exhaustive", other) != \
            protocol.execution_key("exhaustive", thief)


class TestPopulationStats:
    def test_snapshot_and_delta_bracket_a_run(self):
        from repro.testing import PopulationTester, RandomStrategy

        tester = PopulationTester(
            scenario_factory("toy-closed-loop", broken_ttf=True),
            RandomStrategy(seed=0, max_executions=6),
        )
        before = protocol.snapshot_population_stats(tester)
        assert before is not None and before["executions"] == 0
        tester.explore()
        delta = protocol.population_stats_delta(tester, before)
        assert delta is not None
        assert delta["executions"] == 6
        assert set(delta) == set(before)  # the full counter set travels
        # Nothing moved since the sweep: the delta collapses to None.
        assert protocol.population_stats_delta(
            tester, protocol.snapshot_population_stats(tester)
        ) is None

    def test_serial_testers_have_no_stats(self):
        from repro.testing import RandomStrategy, SystematicTester

        tester = SystematicTester(
            scenario_factory("toy-closed-loop"),
            RandomStrategy(seed=0, max_executions=1),
        )
        assert protocol.snapshot_population_stats(tester) is None
        assert protocol.population_stats_delta(tester, None) is None

    def test_decode_validates(self):
        assert protocol.decode_population_stats({"executions": 3}) == {"executions": 3}
        with pytest.raises(protocol.ProtocolError, match="population stats"):
            protocol.decode_population_stats([1, 2])
        with pytest.raises(protocol.ProtocolError, match="population stats"):
            protocol.decode_population_stats({"executions": "many"})
