"""Differential proof: the swarm IS the process pool, over HTTP.

Every execution is a pure function of the shard description, so a
:class:`~repro.swarm.tester.SwarmTester` run (control plane + drones +
wire protocol) must report exactly the trails, violations and coverage
of a :class:`~repro.testing.parallel.ParallelTester` run of the same
workload — on the paper's drone-surveillance case study and on an
exhaustive enumeration alike.
"""

from repro.swarm import SwarmTester
from repro.testing import ExhaustiveStrategy, ParallelTester, RandomStrategy


def _trails(report):
    return sorted(tuple(record.trail) for record in report.executions)


def _violation_keys(report):
    return sorted(
        (violation.time, violation.monitor, violation.message)
        for record in report.executions
        for violation in record.violations
    )


class TestSwarmMatchesPool:
    def test_drone_surveillance_random_sweep(self):
        workload = dict(
            scenario_overrides={"include_unsafe_position": True},
            strategy=RandomStrategy(seed=3, max_executions=48),
            track_coverage=True,
        )
        pool = ParallelTester("drone-surveillance", workers=2, **workload).explore()
        swarm = SwarmTester("drone-surveillance", drones=2, **workload).explore()
        assert _trails(swarm) == _trails(pool)
        assert _violation_keys(swarm) == _violation_keys(pool)
        assert _violation_keys(swarm), "the unsafe-position variant must violate"
        assert swarm.coverage.counts == pool.coverage.counts
        assert swarm.ok == pool.ok
        assert swarm.all_confirmed and pool.all_confirmed
        assert swarm.duplicates == 0  # healthy fleet: exactly-once with no races
        assert swarm.completed_workers == swarm.workers == 2

    def test_toy_exhaustive_enumeration(self):
        workload = dict(
            strategy=ExhaustiveStrategy(max_depth=5, max_executions=500),
        )
        pool = ParallelTester("toy-closed-loop", workers=2, **workload).explore()
        swarm = SwarmTester("toy-closed-loop", drones=2, **workload).explore()
        assert _trails(swarm) == _trails(pool)
        assert len(swarm.executions) == len(pool.executions) > 1
        assert _violation_keys(swarm) == _violation_keys(pool)
        assert swarm.ok and pool.ok  # the protected toy model is safe

    def test_early_stop_returns_a_confirmed_counterexample(self):
        swarm = SwarmTester(
            "toy-closed-loop",
            scenario_overrides={"broken_ttf": True},
            strategy=RandomStrategy(seed=0, max_executions=64),
            drones=2,
            track_coverage=True,
        )
        report = swarm.explore(stop_at_first_violation=True)
        assert not report.ok
        assert report.failing and report.all_confirmed
        assert report.coverage.total_samples > 0  # drained, not dropped
