"""Fault injection on a live localhost swarm: SIGKILL a drone mid-run.

Drives the real stack — :class:`ControlPlaneServer` over HTTP, two
drone OS processes — with no monkeypatching, kills one drone while both
hold leases, and asserts the escalation ladder heals the session:

* the dead drone's shard is re-leased and finished by the survivor;
* the zombie's already-streamed records are NOT double-counted — every
  execution index appears exactly once;
* the healed report's trails, violations and coverage are identical to
  a healthy :class:`ParallelTester` run of the same workload.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.swarm import protocol
from repro.swarm.controlplane import ControlPlaneServer
from repro.swarm.drone import get_json, post_json, run_drone
from repro.testing import ParallelTester, RandomStrategy
from repro.testing.parallel import _RandomShard
from repro.testing.scenarios import scenario_factory

#: Big enough that a shard is still mid-flight when the kill lands
#: (we kill within milliseconds of both leases becoming active).
EXECUTIONS = 600
SEED = 5


def _spawn_fleet(url, count):
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    processes = []
    for index in range(count):
        process = context.Process(
            target=run_drone,
            args=(url,),
            kwargs=dict(
                drone_id=f"kill-test-{index}",
                worker_index=index,
                exit_when_idle=True,
                idle_timeout=10.0,
                heartbeat_interval=0.2,
            ),
            daemon=True,
        )
        process.start()
        processes.append(process)
    return processes


def _wait(predicate, timeout, what):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.01)
    pytest.fail(f"timed out waiting for {what}")


def test_sigkilled_drone_is_healed_without_double_counting():
    factory = scenario_factory("toy-closed-loop", broken_ttf=True)
    half = EXECUTIONS // 2

    def shard(indices):
        return _RandomShard(
            factory=factory, seed=SEED, max_executions=EXECUTIONS,
            indices=tuple(indices), max_permuted=6,
            stop_at_first_violation=False, track_coverage=True,
        )

    expected = ParallelTester(
        "toy-closed-loop",
        scenario_overrides={"broken_ttf": True},
        strategy=RandomStrategy(seed=SEED, max_executions=EXECUTIONS),
        workers=2,
        track_coverage=True,
    ).explore()
    assert not expected.ok  # the broken model must violate: parity is meaningful

    with ControlPlaneServer(heartbeat_timeout=1.0) as server:
        session = post_json(server.url, "/api/v1/session", {
            "shards": [protocol.encode_shard(shard(range(half))),
                       protocol.encode_shard(shard(range(half, EXECUTIONS)))],
        })["session"]
        fleet = _spawn_fleet(server.url, 2)
        try:
            _wait(
                lambda: len(get_json(server.url, "/api/v1/status")["active_leases"]) == 2,
                timeout=30.0, what="both drones to hold a lease",
            )
            os.kill(fleet[0].pid, signal.SIGKILL)
            summary = _wait(
                lambda: (lambda s: s if s["finished"] else None)(
                    get_json(server.url, f"/api/v1/session/{session}/report")),
                timeout=60.0, what="the surviving drone to heal the session",
            )
        finally:
            for process in fleet:
                if process.is_alive():
                    process.terminate()
                process.join(timeout=5.0)

    assert summary["failed"] is None
    assert any(event.startswith("re-lease:") for event in summary["events"]), \
        summary["events"]

    # Exactly-once: the zombie streamed part of its shard before dying and
    # the survivor re-ran the whole shard, yet every index appears once.
    indices = [record["index"] for record in summary["records"]]
    assert sorted(indices) == list(range(EXECUTIONS))

    # And the healed run is bit-identical to the healthy pool run.
    records = sorted(
        (protocol.decode_record(record) for record in summary["records"]),
        key=lambda record: record.index,
    )
    assert [tuple(r.trail) for r in records] == \
        [tuple(r.trail) for r in expected.executions]
    healed_violations = sorted(
        (v.time, v.monitor, v.message) for r in records for v in r.violations)
    pool_violations = sorted(
        (v.time, v.monitor, v.message)
        for r in expected.executions for v in r.violations)
    assert healed_violations == pool_violations and healed_violations
    assert protocol.decode_coverage(summary["coverage"]).counts == \
        expected.coverage.counts
