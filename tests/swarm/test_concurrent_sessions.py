"""Concurrent sessions on one control plane + one shared standing fleet.

The control plane has always multiplexed sessions in its data model;
this pins that it actually *works* under interleaving: two missions of
different scenarios submitted to the same plane, worked by the same
drones, each ingesting exactly once, with no cross-session record or
coverage bleed, and both final reports byte-equal to serial
``SystematicTester`` runs.
"""

import threading

from repro.swarm.controlplane import ControlPlaneServer
from repro.swarm.drone import Drone
from repro.swarm.tester import SwarmTester
from repro.testing import RandomStrategy, SystematicTester, scenario_factory


def _record_keys(records):
    return [
        (
            record.index,
            tuple(record.trail or ()),
            tuple((v.time, v.monitor, v.message) for v in record.violations),
        )
        for record in records
    ]


def test_two_sessions_share_one_fleet_without_bleed():
    workloads = {
        "toy": dict(
            scenario="toy-closed-loop",
            overrides={"broken_ttf": True},
            seed=0,
            budget=8,
        ),
        "surv": dict(
            scenario="drone-surveillance",
            overrides={"include_unsafe_position": True},
            seed=3,
            budget=6,
        ),
    }
    with ControlPlaneServer() as server:
        fleet = [
            Drone(
                server.url,
                drone_id=f"standing-{index}",
                worker_index=index,
                exit_when_idle=False,
                heartbeat_interval=0.25,
                poll_interval=0.05,
            )
            for index in range(2)
        ]
        threads = [
            threading.Thread(target=drone.run, daemon=True) for drone in fleet
        ]
        for thread in threads:
            thread.start()
        try:
            reports = {}

            def run(tag, spec):
                reports[tag] = SwarmTester(
                    spec["scenario"],
                    scenario_overrides=spec["overrides"],
                    strategy=RandomStrategy(
                        seed=spec["seed"], max_executions=spec["budget"]
                    ),
                    control_plane_url=server.url,
                    track_coverage=True,
                ).explore()

            runners = [
                threading.Thread(target=run, args=(tag, spec), daemon=True)
                for tag, spec in workloads.items()
            ]
            for runner in runners:
                runner.start()
            for runner in runners:
                runner.join(timeout=120.0)
            assert set(reports) == set(workloads)
        finally:
            for drone in fleet:
                drone.stop()
            for thread in threads:
                thread.join(timeout=10.0)

    for tag, spec in workloads.items():
        report = reports[tag]
        serial = SystematicTester(
            scenario_factory(spec["scenario"], **spec["overrides"]),
            strategy=RandomStrategy(seed=spec["seed"], max_executions=spec["budget"]),
            track_coverage=True,
        ).explore()
        assert _record_keys(report.executions) == _record_keys(serial.executions), (
            f"session {tag} diverged from its serial run"
        )
        assert report.coverage.counts == serial.coverage.counts
        assert report.duplicates == 0  # exactly-once per session
        assert report.all_confirmed
