"""Drone retry discipline: jittered backoff, and no silently dropped results.

Two failure paths used to lose work: ``_finish`` dropped the final
"done"/result post on a single :class:`SwarmUnavailable` (forfeiting the
whole shard to the re-lease ladder), and the poll loop slept a fixed
interval on every failure (a fleet hammering a recovering control plane
in lockstep).  Both now use capped exponential backoff with per-drone
deterministic jitter; these tests pin the curve and the retry budget.
"""

from repro.swarm.drone import Drone, SwarmUnavailable


def _drone(**kw):
    kw.setdefault("drone_id", "backoff-test-0")
    kw.setdefault("poll_interval", 0.1)
    kw.setdefault("max_backoff", 2.0)
    return Drone("http://127.0.0.1:1", **kw)


class TestBackoffDelay:
    def test_curve_is_exponential_capped_and_jittered(self):
        drone = _drone()
        for attempt in range(12):
            uncapped = drone.poll_interval * (2.0 ** attempt)
            capped = min(drone.max_backoff, uncapped)
            delay = drone.backoff_delay(attempt)
            assert 0.5 * capped <= delay <= capped
            assert delay > 0.0
        # Deep attempts saturate at the cap (never unbounded sleeps).
        assert drone.backoff_delay(50) <= drone.max_backoff

    def test_negative_attempt_clamps_to_the_base_interval(self):
        drone = _drone()
        assert drone.backoff_delay(-3) <= drone.poll_interval

    def test_jitter_is_deterministic_per_drone_id(self):
        a = [_drone().backoff_delay(i) for i in range(6)]
        b = [_drone().backoff_delay(i) for i in range(6)]
        c = [_drone(drone_id="backoff-test-other").backoff_delay(i) for i in range(6)]
        assert a == b  # same id, same stream
        assert a != c  # different drones desynchronise


class TestFinishRetries:
    def _instrumented(self, failures_before_success, **kw):
        drone = _drone(poll_interval=0.001, max_backoff=0.002, **kw)
        calls = {"posts": 0, "sleeps": []}

        def fake_post(path, payload):
            assert path == "/api/v1/result"
            calls["posts"] += 1
            if calls["posts"] <= failures_before_success:
                raise SwarmUnavailable("blip")
            return {}

        drone._post = fake_post
        original_wait = drone._stop.wait
        drone._stop.wait = lambda delay: calls["sleeps"].append(delay) or original_wait(0)
        return drone, calls

    def test_transient_blips_are_retried_until_the_post_lands(self):
        drone, calls = self._instrumented(failures_before_success=3)
        drone._finish("session", 1, done=True)
        assert calls["posts"] == 4  # 3 failures + the successful post
        assert len(calls["sleeps"]) == 3
        # Backoff grows between retries (jitter keeps it within [c/2, c]).
        assert all(delay > 0 for delay in calls["sleeps"])

    def test_gives_up_after_the_retry_budget(self):
        drone, calls = self._instrumented(failures_before_success=99, result_retries=2)
        drone._finish("session", 1, done=True)
        assert calls["posts"] == 3  # initial attempt + 2 retries
        assert len(calls["sleeps"]) == 2

    def test_stop_request_aborts_the_retry_loop(self):
        drone, calls = self._instrumented(failures_before_success=99)
        drone._stop.set()
        drone._finish("session", 1, done=True)
        assert calls["posts"] == 1  # one try, then defer to the lease ladder
        assert calls["sleeps"] == []

    def test_successful_post_is_sent_exactly_once(self):
        drone, calls = self._instrumented(failures_before_success=0)
        drone._finish("session", 1, done=True)
        assert calls["posts"] == 1
        assert calls["sleeps"] == []
