"""Tests for the lagged quadrotor model and the numeric integrators."""

import math

import pytest

from repro.dynamics import (
    ControlCommand,
    DroneState,
    LaggedQuadrotor,
    QuadrotorParams,
    euler_step,
    integrate,
    rk4_step,
)
from repro.geometry import Vec3


class TestLaggedQuadrotor:
    def test_realised_acceleration_lags_command(self):
        model = LaggedQuadrotor(QuadrotorParams(attitude_time_constant=0.5))
        state = DroneState()
        command = ControlCommand(acceleration=Vec3(4.0, 0.0, 0.0))
        lagged = model.step(state, command, 0.05)
        # A double integrator would reach v = 0.2 m/s; the lag keeps it lower.
        assert 0.0 < lagged.velocity.x < 0.2

    def test_converges_to_commanded_acceleration(self):
        model = LaggedQuadrotor(QuadrotorParams(attitude_time_constant=0.1, drag=0.0))
        state = DroneState()
        command = ControlCommand(acceleration=Vec3(2.0, 0.0, 0.0))
        for _ in range(100):
            state = model.step(state, command, 0.02)
        assert model.internal.realized_acceleration.x == pytest.approx(2.0, abs=0.05)

    def test_reset_clears_lag_state(self):
        model = LaggedQuadrotor()
        model.step(DroneState(), ControlCommand(acceleration=Vec3(3.0, 0.0, 0.0)), 0.1)
        model.reset()
        assert model.internal.realized_acceleration == Vec3.zero()

    def test_speed_cap_respected(self):
        model = LaggedQuadrotor(QuadrotorParams(max_speed=2.0))
        state = DroneState()
        command = ControlCommand(acceleration=Vec3(6.0, 0.0, 0.0))
        for _ in range(200):
            state = model.step(state, command, 0.05)
        assert state.speed <= 2.0 + 1e-9

    def test_abstraction_shares_bounds(self):
        model = LaggedQuadrotor(QuadrotorParams(max_speed=3.0, max_acceleration=5.0))
        params = model.as_double_integrator_params()
        assert params.max_speed == 3.0 and params.max_acceleration == 5.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            QuadrotorParams(attitude_time_constant=0.0)
        with pytest.raises(ValueError):
            QuadrotorParams(max_speed=-1.0)

    def test_nan_command_is_sanitised(self):
        model = LaggedQuadrotor()
        after = model.step(DroneState(), ControlCommand(acceleration=Vec3(float("inf"), 0, 0)), 0.1)
        assert after.is_finite()


class TestIntegrators:
    def test_euler_on_constant_derivative(self):
        f = lambda state: (1.0, 2.0)
        assert euler_step(f, (0.0, 0.0), 0.5) == (0.5, 1.0)

    def test_rk4_exact_for_linear_growth(self):
        f = lambda state: (1.0,)
        assert rk4_step(f, (0.0,), 0.5)[0] == pytest.approx(0.5)

    def test_rk4_more_accurate_than_euler_on_exponential(self):
        # x' = x, x(0) = 1, exact x(1) = e.
        f = lambda state: (state[0],)
        euler_result = integrate(f, (1.0,), 1.0, 0.1, method="euler")[0]
        rk4_result = integrate(f, (1.0,), 1.0, 0.1, method="rk4")[0]
        assert abs(rk4_result - math.e) < abs(euler_result - math.e)
        assert rk4_result == pytest.approx(math.e, rel=1e-5)

    def test_negative_step_rejected(self):
        f = lambda state: (1.0,)
        with pytest.raises(ValueError):
            euler_step(f, (0.0,), -0.1)
        with pytest.raises(ValueError):
            rk4_step(f, (0.0,), -0.1)
        with pytest.raises(ValueError):
            integrate(f, (0.0,), 1.0, 0.0)

    def test_integrate_handles_partial_final_step(self):
        f = lambda state: (1.0,)
        assert integrate(f, (0.0,), 0.25, 0.1)[0] == pytest.approx(0.25)
