"""Tests for the battery model used by the battery-safety RTA module."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import BatteryModel, BatteryParams, BatteryState, ControlCommand
from repro.geometry import Vec3


class TestBatteryState:
    def test_charge_must_be_normalised(self):
        with pytest.raises(ValueError):
            BatteryState(charge=1.5)
        with pytest.raises(ValueError):
            BatteryState(charge=-0.1)

    def test_depleted_flag(self):
        assert BatteryState(charge=0.0).depleted
        assert not BatteryState(charge=0.5).depleted


class TestDischarge:
    def test_idle_discharge(self):
        model = BatteryModel(BatteryParams(idle_rate=0.01, accel_rate=0.0))
        after = model.step(BatteryState(1.0), ControlCommand.hover(), 10.0)
        assert after.charge == pytest.approx(0.9)

    def test_acceleration_increases_discharge(self):
        model = BatteryModel(BatteryParams(idle_rate=0.001, accel_rate=0.002))
        idle = model.step(BatteryState(1.0), ControlCommand.hover(), 10.0)
        thrusting = model.step(
            BatteryState(1.0), ControlCommand(acceleration=Vec3(3.0, 0.0, 0.0)), 10.0
        )
        assert thrusting.charge < idle.charge

    def test_charge_never_goes_negative(self):
        model = BatteryModel(BatteryParams(idle_rate=0.5))
        after = model.step(BatteryState(0.1), ControlCommand.hover(), 100.0)
        assert after.charge == 0.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ValueError):
            BatteryModel().step(BatteryState(1.0), ControlCommand.hover(), -1.0)

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            BatteryParams(idle_rate=-0.1)
        with pytest.raises(ValueError):
            BatteryParams(descent_speed=0.0)
        with pytest.raises(ValueError):
            BatteryParams(max_altitude=0.0)


class TestDecisionQuantities:
    def test_cost_and_max_cost(self):
        model = BatteryModel(BatteryParams(idle_rate=0.01, accel_rate=0.01, max_acceleration=4.0))
        command = ControlCommand(acceleration=Vec3(2.0, 0.0, 0.0))
        assert model.cost(command, 2.0) == pytest.approx((0.01 + 0.02) * 2.0)
        assert model.max_cost(2.0) == pytest.approx((0.01 + 0.04) * 2.0)
        assert model.cost(command, 1.0) <= model.max_cost(1.0)

    def test_landing_bounds_use_max_altitude_by_default(self):
        params = BatteryParams(descent_speed=2.0, max_altitude=10.0)
        model = BatteryModel(params)
        assert model.landing_time_bound() == pytest.approx(5.0)
        assert model.landing_time_bound(4.0) == pytest.approx(2.0)
        assert model.landing_charge_bound(4.0) < model.landing_charge_bound()

    def test_ttf_check_matches_paper_formula(self):
        params = BatteryParams(idle_rate=0.01, accel_rate=0.0, descent_speed=1.0, max_altitude=10.0)
        model = BatteryModel(params)
        two_delta = 2.0
        t_max = model.landing_charge_bound()
        cost_star = model.max_cost(two_delta)
        threshold = t_max + cost_star
        assert model.time_to_failure_exceeded(BatteryState(threshold - 0.01), two_delta)
        assert not model.time_to_failure_exceeded(BatteryState(threshold + 0.01), two_delta)

    def test_endurance_is_finite_and_positive(self):
        assert 0.0 < BatteryModel().endurance() < 10_000.0

    def test_negative_duration_rejected(self):
        model = BatteryModel()
        with pytest.raises(ValueError):
            model.cost(ControlCommand.hover(), -1.0)
        with pytest.raises(ValueError):
            model.max_cost(-1.0)

    @given(
        charge=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        duration=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        accel=st.floats(min_value=0.0, max_value=6.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_max_cost_dominates_any_cost(self, charge, duration, accel):
        """cost* is a true upper bound over all admissible controls."""
        model = BatteryModel()
        command = ControlCommand(acceleration=Vec3(accel, 0.0, 0.0))
        assert model.cost(command, duration) <= model.max_cost(duration) + 1e-12
