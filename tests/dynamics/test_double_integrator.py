"""Tests for the bounded double-integrator drone model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import (
    BoundedDoubleIntegrator,
    ControlCommand,
    DoubleIntegratorParams,
    DroneState,
    conservative_drone_model,
    default_drone_model,
    worst_case_reach_radius,
)
from repro.geometry import Vec3


class TestParams:
    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DoubleIntegratorParams(max_speed=0.0)
        with pytest.raises(ValueError):
            DoubleIntegratorParams(max_acceleration=-1.0)
        with pytest.raises(ValueError):
            DoubleIntegratorParams(drag=-0.1)

    def test_factories(self):
        assert default_drone_model().max_speed == pytest.approx(5.0)
        assert conservative_drone_model(1.2).max_speed == pytest.approx(1.2)


class TestStepping:
    def test_acceleration_moves_the_drone(self):
        model = BoundedDoubleIntegrator()
        state = DroneState()
        command = ControlCommand(acceleration=Vec3(1.0, 0.0, 0.0))
        after = model.step(state, command, 0.1)
        assert after.velocity.x > 0.0
        assert after.position.x > 0.0

    def test_speed_saturates(self):
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=2.0, max_acceleration=10.0))
        state = DroneState()
        command = ControlCommand(acceleration=Vec3(10.0, 0.0, 0.0))
        for _ in range(100):
            state = model.step(state, command, 0.05)
        assert state.speed <= 2.0 + 1e-9

    def test_acceleration_saturates(self):
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=10.0, max_acceleration=1.0))
        state = DroneState()
        command = ControlCommand(acceleration=Vec3(100.0, 0.0, 0.0))
        after = model.step(state, command, 1.0)
        assert after.velocity.norm() <= 1.0 + 1e-6

    def test_nan_command_treated_as_hover(self):
        model = BoundedDoubleIntegrator()
        state = DroneState(velocity=Vec3(1.0, 0.0, 0.0))
        command = ControlCommand(acceleration=Vec3(float("nan"), 0.0, 0.0))
        after = model.step(state, command, 0.1)
        assert after.is_finite()

    def test_negative_dt_rejected(self):
        model = BoundedDoubleIntegrator()
        with pytest.raises(ValueError):
            model.step(DroneState(), ControlCommand.hover(), -0.1)

    def test_rollout_matches_repeated_steps(self):
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(drag=0.0))
        command = ControlCommand(acceleration=Vec3(1.0, 0.0, 0.0))
        manual = DroneState()
        for _ in range(10):
            manual = model.step(manual, command, 0.1)
        rolled = model.rollout(DroneState(), command, 1.0, 0.1)
        assert rolled.position.almost_equal(manual.position, tol=1e-9)

    def test_brake_command_opposes_velocity(self):
        model = BoundedDoubleIntegrator()
        state = DroneState(velocity=Vec3(2.0, 0.0, 0.0))
        command = model.brake_command(state)
        assert command.acceleration.x < 0.0
        assert model.brake_command(DroneState()).acceleration == Vec3.zero()

    def test_time_to_stop(self):
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=6.0, max_acceleration=3.0))
        assert model.time_to_stop(6.0) == pytest.approx(2.0)


class TestWorstCaseBounds:
    def test_max_displacement_matches_kinematics(self):
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=2.0))
        # From rest for 1 s: 0.5·a·t² = 1.0 m (below the speed cap).
        assert model.max_displacement(0.0, 1.0) == pytest.approx(1.0)
        # At the cap the displacement is linear in time.
        assert model.max_displacement(4.0, 2.0) == pytest.approx(8.0)

    def test_stopping_distance(self):
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=2.0))
        assert model.stopping_distance(4.0) == pytest.approx(4.0)
        assert model.stopping_distance(0.0) == 0.0

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            BoundedDoubleIntegrator().max_displacement(0.0, -1.0)

    def test_worst_case_reach_radius_helper(self):
        model = default_drone_model()
        state = DroneState(velocity=Vec3(3.0, 0.0, 0.0))
        assert worst_case_reach_radius(model, state, 0.2) == pytest.approx(
            model.max_displacement(3.0, 0.2)
        )

    @given(
        speed=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        horizon=st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
        ax=st.floats(min_value=-6.0, max_value=6.0, allow_nan=False),
        ay=st.floats(min_value=-6.0, max_value=6.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_max_displacement_is_sound(self, speed, horizon, ax, ay):
        """No simulated behaviour travels further than the analytic bound.

        This is the soundness property the decision module's ttf_2Δ check
        relies on (Reach over-approximation).
        """
        model = BoundedDoubleIntegrator(
            DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0, drag=0.0)
        )
        state = DroneState(velocity=Vec3(speed, 0.0, 0.0))
        command = ControlCommand(acceleration=Vec3(ax, ay, 0.0))
        final = model.rollout(state, command, horizon, dt=0.01)
        travelled = final.position.distance_to(state.position)
        assert travelled <= model.max_displacement(speed, horizon) + 1e-6
