"""Tests for the plant ↔ SOTER co-simulation."""

import pytest

from repro.apps import StackConfig, build_stack
from repro.core import ConstantNode, Program, SoterCompiler, Topic
from repro.dynamics import ControlCommand, DroneState, default_drone_model
from repro.geometry import Vec3, empty_workspace
from repro.simulation import (
    DronePlant,
    DroneSimulation,
    SimulationConfig,
    StateEstimator,
    waypoint_range,
)


def _thrust_only_system():
    """A system with a single node that always commands forward thrust."""
    program = Program(
        name="thrust",
        topics=[Topic("controlCommand", ControlCommand, None)],
        nodes=[
            ConstantNode(
                "thruster", {"controlCommand": ControlCommand(acceleration=Vec3(2.0, 0.0, 0.0))}, period=0.05
            )
        ],
    )
    return SoterCompiler().compile(program).system


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(physics_dt=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(monitor_period=0.0)


class TestCoSimulation:
    def test_plant_follows_published_commands(self):
        workspace = empty_workspace(side=50.0, ceiling=10.0)
        plant = DronePlant(
            model=default_drone_model(),
            workspace=workspace,
            initial_state=DroneState(position=Vec3(2, 2, 2)),
        )
        sim = DroneSimulation(system=_thrust_only_system(), plant=plant, estimator=StateEstimator(0.0, 0.0))
        result = sim.run(duration=3.0)
        assert result.plant.state.position.x > 4.0
        assert result.end_time == pytest.approx(3.0, abs=0.1)
        assert len(result.trajectory) > 10

    def test_sensor_topics_are_published(self):
        workspace = empty_workspace(side=50.0, ceiling=10.0)
        plant = DronePlant(model=default_drone_model(), workspace=workspace)
        sim = DroneSimulation(system=_thrust_only_system(), plant=plant)
        sim.run(duration=0.5)
        assert isinstance(sim.engine.read_topic("localPosition"), DroneState)
        assert sim.engine.read_topic("batteryStatus") is not None

    def test_signals_recorded_in_trace(self):
        workspace = empty_workspace(side=50.0, ceiling=10.0)
        plant = DronePlant(model=default_drone_model(), workspace=workspace)
        sim = DroneSimulation(system=_thrust_only_system(), plant=plant)
        result = sim.run(duration=1.0)
        assert result.trace.signal("clearance")
        assert result.trace.signal("battery")
        assert result.trace.min_signal("clearance") is not None

    def test_stop_on_crash(self):
        workspace = empty_workspace(side=10.0, ceiling=10.0)
        plant = DronePlant(
            model=default_drone_model(),
            workspace=workspace,
            initial_state=DroneState(position=Vec3(8.0, 5.0, 2.0)),
        )
        sim = DroneSimulation(system=_thrust_only_system(), plant=plant, estimator=StateEstimator(0.0, 0.0))
        result = sim.run(duration=30.0)
        assert result.stop_reason == "crash"
        assert result.crashed
        assert result.end_time < 30.0

    def test_custom_stop_condition(self):
        workspace = empty_workspace(side=50.0, ceiling=10.0)
        plant = DronePlant(model=default_drone_model(), workspace=workspace)
        sim = DroneSimulation(system=_thrust_only_system(), plant=plant)
        result = sim.run(duration=30.0, stop_when=lambda s: s.plant.state.position.x > 5.0)
        assert result.stop_reason == "stop condition"

    def test_safe_property_reflects_monitors_and_plant(self):
        world = waypoint_range()
        config = StackConfig(
            world=world, goals=world.surveillance_points, loop_goals=False,
            planner="straight", protect_battery=False, seed=1,
        )
        stack = build_stack(config)
        metrics, result = stack.run(duration=120.0)
        assert result.safe == (not result.crashed and result.monitors.ok)
