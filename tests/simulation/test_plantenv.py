"""``RowGroupPlant``/``PlantEnvironment`` vs the scalar plant loop.

The vectorized live-row path promises per-row *bit-identity* with the
scalar path: :meth:`RowGroupPlant.step_window` must leave every plant in
exactly the state K independent ``apply`` loops would, and a
:class:`PlantEnvironment` integrating through the row-group matrix plant
must publish the same readings as its scalar twin.  The oracle is the
literal scalar plant, compared with ``==`` after many windows that
exercise gusts, collisions and battery discharge.
"""

import numpy as np
import pytest

from repro.dynamics import BatteryModel, BoundedDoubleIntegrator, ControlCommand, DroneState
from repro.geometry import Vec3
from repro.simulation import (
    BatterySensor,
    DronePlant,
    PlantChannel,
    PlantEnvironment,
    RowGroupPlant,
    StateEstimator,
    surveillance_city,
)


def _plants(workspace, K, seed=0):
    rng = np.random.default_rng(seed)
    starts = rng.uniform([2, 2, 1.0], [20, 20, 6.0], size=(K, 3))
    charges = rng.uniform(0.05, 1.0, size=K)
    model = BoundedDoubleIntegrator()
    battery = BatteryModel()
    return [
        DronePlant(
            model,
            workspace,
            battery_model=battery,
            initial_state=DroneState(position=Vec3(*row)),
            initial_charge=charge,
        )
        for row, charge in zip(starts, charges)
    ]


def _plant_fields(plant):
    return (
        plant.time,
        plant.state,
        plant.battery,
        plant.collided,
        plant.collision_position,
        plant.battery_failed,
        plant.distance_flown,
        plant.min_clearance,
    )


class TestRowGroupPlant:
    @pytest.mark.parametrize("K", [1, 3, 32])
    def test_step_window_bit_identical_to_scalar_loops(self, K):
        workspace = surveillance_city().workspace
        batch_plants = _plants(workspace, K, seed=7)
        scalar_plants = _plants(workspace, K, seed=7)
        group = RowGroupPlant(batch_plants)
        rng = np.random.default_rng(11)
        dt = 0.05
        for window in range(40):
            duration = float(rng.choice([0.25, 0.1, 0.3]))
            commands = rng.uniform(-8.0, 8.0, size=(K, 3))
            gusts = rng.uniform(-20.0, 20.0, size=(K, 3))
            group.step_window(commands, duration, dt, gusts)
            # The scalar oracle: the same per-substep loop, plant by plant.
            remaining = duration
            while remaining > 1e-12:
                step = min(dt, remaining)
                for k, plant in enumerate(scalar_plants):
                    command = ControlCommand(acceleration=Vec3(*commands[k]))
                    plant.apply(command, step, Vec3(*gusts[k]))
                remaining -= step
            for batch, scalar in zip(batch_plants, scalar_plants):
                assert _plant_fields(batch) == _plant_fields(scalar)
        assert group.batched_substeps > 0

    def test_requires_shared_models(self):
        workspace = surveillance_city().workspace
        battery = BatteryModel()
        model = BoundedDoubleIntegrator()
        plants = [
            DronePlant(model, workspace, battery_model=battery) for _ in range(2)
        ]
        RowGroupPlant(plants)  # shared dynamics/battery instances: fine
        mismatched = [
            DronePlant(model, workspace, battery_model=battery),
            DronePlant(model, workspace, battery_model=BatteryModel()),
        ]
        with pytest.raises(ValueError, match="share"):
            RowGroupPlant(mismatched)

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError, match="at least one"):
            RowGroupPlant([])


class _ScriptedStrategy:
    """Deterministic gust picker: cycles through the menu."""

    def __init__(self):
        self.calls = 0

    def choose(self, count, label=None):
        index = self.calls % count
        self.calls += 1
        return index


class _StubEngine:
    """Just enough of the engine surface for PlantEnvironment.apply."""

    def __init__(self, commands):
        self._commands = commands
        self.inputs = []

    def read_topic(self, topic):
        return self._commands.get(topic)

    def set_input(self, topic, value):
        self.inputs.append((topic, value))


def _environment(workspace, K, seed=0):
    plants = _plants(workspace, K, seed=seed)
    channels = [
        PlantChannel(
            plant=plant,
            estimator=StateEstimator(position_noise=0.05, velocity_noise=0.05, seed=k),
            battery_sensor=BatterySensor(seed=k + 1),
            command_topic=f"cmd{k}",
            position_topic=f"pos{k}",
            battery_topic=f"bat{k}",
            label=f"drone{k}",
        )
        for k, plant in enumerate(plants)
    ]
    return PlantEnvironment(
        channels=channels,
        gust_menu=[Vec3.zero(), Vec3(25.0, 0.0, 0.0), Vec3(0.0, -25.0, 0.0)],
        period=0.25,
        physics_dt=0.05,
    )


class TestPlantEnvironment:
    def test_batch_path_identical_to_scalar_path(self):
        workspace = surveillance_city().workspace
        K = 3
        scalar_env = _environment(workspace, K, seed=5)
        batch_env = _environment(workspace, K, seed=5)
        batch_env.set_batch_plant(True, min_rows=1)  # force past the economic gate
        assert batch_env.batch_plant_active
        scalar_env.bind_strategy(_ScriptedStrategy())
        batch_env.bind_strategy(_ScriptedStrategy())
        commands = {f"cmd{k}": ControlCommand(acceleration=Vec3(2.0, -1.0, 0.5)) for k in range(K)}
        scalar_engine = _StubEngine(commands)
        batch_engine = _StubEngine(commands)
        for tick in range(12):
            until = 0.25 * tick
            scalar_env.apply(scalar_engine, until)
            batch_env.apply(batch_engine, until)
            for s_channel, b_channel in zip(scalar_env.channels, batch_env.channels):
                assert _plant_fields(s_channel.plant) == _plant_fields(b_channel.plant)
        # Published readings (noisy estimates included) must agree exactly.
        # (Value equality on float64 is bit-equality; the scalar oracle may
        # carry numpy scalars where the matrix path stores plain floats.)
        assert scalar_engine.inputs == batch_engine.inputs

    def test_batch_plant_gate_is_economic(self):
        # Below BATCH_PLANT_MIN_ROWS the matrix path loses to the memoized
        # scalar loop, so a plain enable keeps the scalar path; a large
        # enough fleet (or an explicit min_rows) engages the row group.
        workspace = surveillance_city().workspace
        small = _environment(workspace, 3, seed=1)
        small.set_batch_plant(True)
        assert not small.batch_plant_active
        small.set_batch_plant(True, min_rows=1)
        assert small.batch_plant_active
        small.set_batch_plant(False)
        assert not small.batch_plant_active
        from repro.simulation.plantenv import BATCH_PLANT_MIN_ROWS

        large = _environment(workspace, BATCH_PLANT_MIN_ROWS, seed=1)
        large.set_batch_plant(True)
        assert large.batch_plant_active

    def test_reset_is_deterministic(self):
        workspace = surveillance_city().workspace
        env = _environment(workspace, 2, seed=9)
        env.bind_strategy(_ScriptedStrategy())
        initial = [_plant_fields(channel.plant) for channel in env.channels]
        engine = _StubEngine({"cmd0": ControlCommand(acceleration=Vec3(3.0, 0.0, 0.0))})
        env.apply(engine, 1.0)
        moved = [_plant_fields(channel.plant) for channel in env.channels]
        assert moved != initial
        env.reset()
        assert [_plant_fields(channel.plant) for channel in env.channels] == initial

    def test_delta_round_trip_restores_trajectory(self):
        workspace = surveillance_city().workspace
        env = _environment(workspace, 2, seed=3)
        env.bind_strategy(_ScriptedStrategy())
        commands = {f"cmd{k}": ControlCommand(acceleration=Vec3(1.5, 1.0, 0.0)) for k in range(2)}
        engine = _StubEngine(commands)
        env.apply(engine, 0.5)
        mark = env.capture_delta_state()
        version = env.delta_version
        # Diverge, then rewind: the replayed continuation must be identical.
        env.apply(engine, 2.0)
        first = [_plant_fields(channel.plant) for channel in env.channels]
        first_inputs = [(t, repr(v)) for t, v in engine.inputs]
        env.restore_delta_state(mark)
        assert env.delta_version != version  # restore is itself a mutation
        engine.inputs.clear()
        env.apply(engine, 2.0)
        assert [_plant_fields(channel.plant) for channel in env.channels] == first
        replay_inputs = [(t, repr(v)) for t, v in engine.inputs]
        assert replay_inputs == first_inputs[-len(replay_inputs):]
