"""Tests for the drone plant, sensors, wind models, and mission worlds."""

import pytest

from repro.dynamics import BatteryModel, BatteryParams, ControlCommand, DroneState, default_drone_model
from repro.geometry import AABB, Vec3, empty_workspace
from repro.simulation import (
    BatterySensor,
    ConstantWind,
    DronePlant,
    GustyWind,
    NoWind,
    PerfectEstimator,
    StateEstimator,
    figure_eight_range,
    surveillance_city,
    waypoint_range,
)


@pytest.fixture
def plant():
    workspace = empty_workspace(side=20.0, ceiling=10.0)
    workspace.add_obstacle(AABB.from_footprint(9.0, 9.0, 2.0, 2.0, 8.0))
    return DronePlant(
        model=default_drone_model(),
        workspace=workspace,
        initial_state=DroneState(position=Vec3(2.0, 2.0, 2.0)),
    )


class TestDronePlant:
    def test_apply_moves_the_drone_and_tracks_distance(self, plant):
        command = ControlCommand(acceleration=Vec3(2.0, 0.0, 0.0))
        for _ in range(50):
            plant.apply(command, 0.02)
        assert plant.state.position.x > 2.0
        assert plant.distance_flown > 0.0
        assert plant.time == pytest.approx(1.0)

    def test_none_command_means_no_thrust(self, plant):
        plant.apply(None, 0.1)
        assert plant.state.velocity.norm() == pytest.approx(0.0, abs=1e-6)

    def test_collision_detected_and_freezes_plant(self, plant):
        command = ControlCommand(acceleration=Vec3(6.0, 6.0, 0.0))
        for _ in range(600):
            plant.apply(command, 0.02)
            if plant.collided:
                break
        assert plant.collided
        assert plant.crashed
        position_at_impact = plant.state.position
        plant.apply(command, 0.5)
        assert plant.state.position == position_at_impact

    def test_battery_drains_and_depletion_is_a_crash(self):
        workspace = empty_workspace(side=20.0, ceiling=10.0)
        plant = DronePlant(
            model=default_drone_model(),
            workspace=workspace,
            battery_model=BatteryModel(BatteryParams(idle_rate=0.5)),
            initial_state=DroneState(position=Vec3(5, 5, 3.0)),
            initial_charge=0.05,
        )
        for _ in range(100):
            plant.apply(ControlCommand.hover(), 0.05)
        assert plant.battery.depleted
        assert plant.crashed  # depleted while airborne

    def test_landing_on_the_ground_is_not_a_collision(self, plant):
        descend = ControlCommand(acceleration=Vec3(0.0, 0.0, -3.0))
        for _ in range(400):
            plant.apply(descend, 0.02)
        assert not plant.collided
        assert not plant.airborne
        assert plant.landed

    def test_ground_clamping(self, plant):
        plant.apply(ControlCommand(acceleration=Vec3(0, 0, -6.0)), 5.0)
        assert plant.state.position.z >= 0.0

    def test_min_clearance_is_tracked(self, plant):
        command = ControlCommand(acceleration=Vec3(3.0, 3.0, 0.0))
        for _ in range(100):
            plant.apply(command, 0.02)
        assert plant.min_clearance <= plant.workspace.clearance(Vec3(2.0, 2.0, 2.0))

    def test_status_and_battery_status(self, plant):
        status = plant.status()
        assert status.state.position == plant.state.position
        battery_status = plant.battery_status()
        assert battery_status.charge == plant.battery.charge
        assert battery_status.altitude == pytest.approx(2.0)
        assert not battery_status.depleted

    def test_negative_dt_rejected(self, plant):
        with pytest.raises(ValueError):
            plant.apply(ControlCommand.hover(), -0.1)


class TestSensors:
    def test_state_estimator_noise_is_bounded(self):
        estimator = StateEstimator(position_noise=0.05, velocity_noise=0.05, seed=1)
        truth = DroneState(position=Vec3(1, 2, 3), velocity=Vec3(0.5, 0, 0))
        for _ in range(50):
            estimate = estimator.estimate(truth)
            assert estimate.position.distance_to(truth.position) <= 0.05 * (3 ** 0.5) + 1e-9
            assert estimate.velocity.distance_to(truth.velocity) <= 0.05 * (3 ** 0.5) + 1e-9

    def test_perfect_estimator_returns_truth(self):
        truth = DroneState(position=Vec3(1, 2, 3))
        assert PerfectEstimator().estimate(truth) is truth

    def test_estimator_validation(self):
        with pytest.raises(ValueError):
            StateEstimator(position_noise=-0.1)

    def test_battery_sensor_is_clamped(self, plant):
        sensor = BatterySensor(charge_noise=0.01, seed=0)
        reading = sensor.measure(plant)
        assert 0.0 <= reading.charge <= 1.0
        with pytest.raises(ValueError):
            BatterySensor(charge_noise=-0.1)


class TestWind:
    def test_no_wind(self):
        assert NoWind().acceleration(3.0) == Vec3.zero()

    def test_constant_wind_is_normalised(self):
        wind = ConstantWind(direction=Vec3(2.0, 0.0, 0.0), strength=0.5)
        assert wind.acceleration(0.0).norm() == pytest.approx(0.5)
        with pytest.raises(ValueError):
            ConstantWind(direction=Vec3(0, 0, 0))

    def test_gusty_wind_is_bounded_and_seeded(self):
        wind = GustyWind(mean=Vec3(0.2, 0, 0), gust_amplitude=0.5, seed=4)
        other = GustyWind(mean=Vec3(0.2, 0, 0), gust_amplitude=0.5, seed=4)
        for t in (0.0, 1.0, 2.5):
            assert wind.acceleration(t).norm() <= 0.2 + 0.5 + 1e-9
            assert wind.acceleration(t).almost_equal(other.acceleration(t))
        with pytest.raises(ValueError):
            GustyWind(gust_period=0.0)


class TestWorlds:
    def test_city_has_nine_buildings_and_safe_points(self):
        world = surveillance_city()
        assert len(world.workspace.obstacles) == 9
        for point in world.surveillance_points:
            assert world.workspace.clearance(point) > 2.0

    def test_range_goals_are_free_but_near_obstacles(self):
        world = waypoint_range()
        for goal in world.surveillance_points:
            assert world.workspace.is_free(goal)
        # At least one goal sits close to a keep-out block (that is the point
        # of the experiment).
        assert min(world.workspace.clearance(g) for g in world.surveillance_points) < 3.0

    def test_goals_cycle(self):
        world = waypoint_range()
        goals = world.goals_cycle(6)
        assert len(goals) == 6
        assert goals[0] == goals[4]
        with pytest.raises(ValueError):
            figure_eight_range().goals_cycle(3)

    def test_random_goal_has_clearance(self):
        import random

        world = surveillance_city()
        goal = world.random_goal(random.Random(0), margin=2.0)
        assert world.workspace.clearance(goal) >= 2.0
