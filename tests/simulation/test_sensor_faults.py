"""Sensor-plane faults: stuck, stale and dropped estimator/battery readings.

The paper trusts the state estimators; the faulty wrappers model exactly
the violations of that trust assumption (frozen sensors, congested buses,
dead sensors) on a deterministic sample-index clock, so two resets
produce bit-identical reading streams — the property the fault
exploration plane's replay contract needs.
"""

import pytest

from repro.apps import StackConfig, build_stack
from repro.dynamics import DroneState, default_drone_model
from repro.dynamics.battery import BatteryState
from repro.geometry import Vec3, empty_workspace
from repro.simulation import (
    SENSOR_FAULT_MODES,
    DronePlant,
    FaultyBatterySensor,
    FaultyStateEstimator,
    PerfectEstimator,
)


def _states(count):
    return [DroneState(position=Vec3(float(i), 0.0, 2.0)) for i in range(count)]


def _plant(charge=0.9):
    return DronePlant(
        model=default_drone_model(),
        workspace=empty_workspace(side=20.0, ceiling=10.0),
        initial_state=DroneState(position=Vec3(2.0, 2.0, 2.0)),
        initial_charge=charge,
    )


class TestValidation:
    def test_mode_window_and_lag_are_validated(self):
        with pytest.raises(ValueError):
            FaultyStateEstimator(mode="explode")
        with pytest.raises(ValueError):
            FaultyStateEstimator(fault_from=5, fault_until=2)
        with pytest.raises(ValueError):
            FaultyStateEstimator(mode="stale", lag=0)
        assert set(SENSOR_FAULT_MODES) == {"stuck", "stale", "dropout"}


class TestFaultyStateEstimator:
    def test_stuck_freezes_the_last_healthy_reading(self):
        estimator = FaultyStateEstimator(
            inner=PerfectEstimator(), mode="stuck", fault_from=2, fault_until=4
        )
        readings = [estimator.estimate(s) for s in _states(5)]
        assert readings[0].position.x == pytest.approx(0.0)
        assert readings[1].position.x == pytest.approx(1.0)
        assert readings[2].position.x == pytest.approx(1.0)  # frozen
        assert readings[3].position.x == pytest.approx(1.0)  # still frozen
        assert readings[4].position.x == pytest.approx(4.0)  # window over

    def test_stuck_from_the_first_sample_pins_that_reading(self):
        estimator = FaultyStateEstimator(inner=PerfectEstimator(), mode="stuck", fault_until=3)
        readings = [estimator.estimate(s) for s in _states(3)]
        assert [r.position.x for r in readings] == [0.0, 0.0, 0.0]

    def test_stale_serves_lagged_readings(self):
        estimator = FaultyStateEstimator(
            inner=PerfectEstimator(), mode="stale", lag=2, fault_from=3, fault_until=6
        )
        readings = [estimator.estimate(s) for s in _states(6)]
        assert [r.position.x for r in readings[:3]] == [0.0, 1.0, 2.0]
        # In the window: the reading lags two samples behind.
        assert [r.position.x for r in readings[3:]] == [1.0, 2.0, 3.0]

    def test_dropout_returns_none(self):
        estimator = FaultyStateEstimator(
            inner=PerfectEstimator(), mode="dropout", fault_from=1, fault_until=2
        )
        readings = [estimator.estimate(s) for s in _states(3)]
        assert readings[0] is not None
        assert readings[1] is None
        assert readings[2] is not None

    def test_two_resets_give_bit_identical_streams(self):
        estimator = FaultyStateEstimator(mode="stuck", fault_from=2, fault_until=5)

        def stream():
            estimator.reset()
            return [estimator.estimate(s).position for s in _states(6)]

        first, second = stream(), stream()
        assert all(a.almost_equal(b) for a, b in zip(first, second))


class TestFaultyBatterySensor:
    def test_stuck_battery_hides_the_drain(self):
        sensor = FaultyBatterySensor(mode="stuck", fault_from=1, fault_until=10)
        plant = _plant(charge=0.9)
        first = sensor.measure(plant)
        plant.battery = BatteryState(charge=0.2)  # the drain the frozen sensor hides
        stuck = sensor.measure(plant)
        assert stuck.charge == pytest.approx(first.charge)

    def test_dropout_battery_reads_none(self):
        sensor = FaultyBatterySensor(mode="dropout", fault_from=0, fault_until=1)
        plant = _plant()
        assert sensor.measure(plant) is None
        assert sensor.measure(plant) is not None

    def test_reset_rewinds_the_sample_clock(self):
        sensor = FaultyBatterySensor(mode="dropout", fault_from=0, fault_until=1)
        plant = _plant()
        assert sensor.measure(plant) is None
        sensor.reset()
        assert sensor.measure(plant) is None  # sample 0 again


class TestStackWiring:
    def test_estimator_and_battery_faults_reach_the_simulation(self):
        stack = build_stack(
            StackConfig(
                planner="straight",
                estimator_fault=("stuck", 2, 8),
                battery_fault=("dropout", 1, 4),
            )
        )
        assert isinstance(stack.simulation.estimator, FaultyStateEstimator)
        assert stack.simulation.estimator.mode == "stuck"
        assert isinstance(stack.simulation.battery_sensor, FaultyBatterySensor)
        assert stack.simulation.battery_sensor.mode == "dropout"

    def test_faulted_stack_still_runs_and_stays_safe(self):
        stack = build_stack(
            StackConfig(planner="straight", estimator_fault=("dropout", 2, 4))
        )
        result = stack.simulation.run(duration=1.0)
        assert result.monitors.ok

    def test_default_stack_keeps_plain_sensors(self):
        stack = build_stack(StackConfig(planner="straight"))
        assert not isinstance(stack.simulation.estimator, FaultyStateEstimator)
        assert not isinstance(stack.simulation.battery_sensor, FaultyBatterySensor)
