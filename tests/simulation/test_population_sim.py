"""``PopulationSimulation`` vs a loop of real ``DronePlant`` instances.

The matrix plant promises per-row *bit-identity* with
:meth:`DronePlant.apply` — the same floating-point expressions in the same
order, with diverged rows (collided, battery-depleted, grounded) carried by
masks instead of control flow.  The oracle here is the literal scalar
plant: K missions integrated twice, once as one ``(K, …)`` population and
once as K independent plants, compared with ``==`` after hundreds of ticks
that exercise collisions, depletion free-fall, ground clamping and
waypoint advancement.
"""

import numpy as np
import pytest

from repro.control import AggressiveTracker
from repro.dynamics import BatteryModel, BoundedDoubleIntegrator, DroneState
from repro.geometry import Vec3
from repro.simulation import DronePlant, PopulationSimulation, surveillance_city


def _random_missions(seed, K, W):
    rng = np.random.default_rng(seed)
    starts = rng.uniform([2, 2, 1.0], [20, 20, 6.0], size=(K, 3))
    waypoints = rng.uniform([1, 1, 0.5], [24, 24, 8.0], size=(K, W, 3))
    charges = rng.uniform(0.003, 1.0, size=K)
    return starts, waypoints, charges


def _scalar_plants(workspace, starts, charges):
    return [
        DronePlant(
            BoundedDoubleIntegrator(),
            workspace,
            battery_model=BatteryModel(),
            initial_state=DroneState(position=Vec3(*row)),
            initial_charge=charge,
        )
        for row, charge in zip(starts, charges)
    ]


def _step_scalar_oracle(plants, tracker, waypoints, indices, tolerance, dt):
    """One tick of K scalar plants, mirroring PopulationSimulation.step."""
    W = waypoints.shape[1]
    for k, plant in enumerate(plants):
        target = Vec3(*waypoints[k][indices[k]])
        if plant.state.position.distance_to(target) < tolerance and indices[k] < W - 1:
            indices[k] += 1
            target = Vec3(*waypoints[k][indices[k]])
        command = tracker.command(plant.state, target, plant.time)
        plant.apply(command, dt)


def _assert_rows_match(population, plants, indices):
    for k, plant in enumerate(plants):
        assert (np.array(plant.state.position.as_tuple()) == population.positions[k]).all()
        assert (np.array(plant.state.velocity.as_tuple()) == population.velocities[k]).all()
        assert plant.battery.charge == population.charges[k]
        assert plant.collided == population.collided[k]
        assert plant.battery_failed == population.battery_failed[k]
        assert plant.distance_flown == population.distance_flown[k]
        assert plant.min_clearance == population.min_clearance[k]
        assert indices[k] == population.waypoint_index[k]
        assert plant.crashed == population.crashed[k]
        assert plant.airborne == population.airborne[k]


class TestPopulationVsScalarPlants:
    def test_bit_identical_to_scalar_plant_loop(self):
        workspace = surveillance_city().workspace
        tracker = AggressiveTracker()
        starts, waypoints, charges = _random_missions(3, K=32, W=4)
        # One row starts airborne with a dead battery: the free-fall branch
        # and the battery_failed latch must fire (and match the oracle).
        charges[0] = 0.0
        population = PopulationSimulation(
            BoundedDoubleIntegrator(),
            workspace,
            tracker,
            waypoints,
            starts,
            initial_charges=charges,
            battery_model=BatteryModel(),
        )
        plants = _scalar_plants(workspace, starts, charges)
        indices = [0] * population.size
        dt = 0.02
        for _ in range(400):
            _step_scalar_oracle(
                plants, tracker, waypoints, indices, population.waypoint_tolerance, dt
            )
            population.step(dt)
        _assert_rows_match(population, plants, indices)
        # The sweep must actually exercise the divergence masks: some rows
        # collide with the city, some deplete, some keep flying.
        assert 0 < population.collided.sum() < population.size
        assert population.battery_failed.any()
        status = population.status()
        assert status.any_crashed
        assert (status.crashed == (population.collided | population.battery_failed)).all()

    def test_disturbance_rows_match_scalar(self):
        workspace = surveillance_city().workspace
        tracker = AggressiveTracker()
        starts, waypoints, charges = _random_missions(11, K=8, W=3)
        population = PopulationSimulation(
            BoundedDoubleIntegrator(),
            workspace,
            tracker,
            waypoints,
            starts,
            initial_charges=charges,
            battery_model=BatteryModel(),
        )
        plants = _scalar_plants(workspace, starts, charges)
        indices = [0] * population.size
        wind = Vec3(0.4, -0.2, 0.1)
        dt = 0.05
        for _ in range(120):
            W = waypoints.shape[1]
            for k, plant in enumerate(plants):
                target = Vec3(*waypoints[k][indices[k]])
                if (
                    plant.state.position.distance_to(target) < population.waypoint_tolerance
                    and indices[k] < W - 1
                ):
                    indices[k] += 1
                    target = Vec3(*waypoints[k][indices[k]])
                command = tracker.command(plant.state, target, plant.time)
                plant.apply(command, dt, disturbance=wind)
            population.step(dt, disturbance=wind)
        _assert_rows_match(population, plants, indices)

    def test_reset_rewinds_every_row(self):
        workspace = surveillance_city().workspace
        starts, waypoints, charges = _random_missions(5, K=6, W=3)
        population = PopulationSimulation(
            BoundedDoubleIntegrator(),
            workspace,
            AggressiveTracker(),
            waypoints,
            starts,
            initial_charges=charges,
        )
        first = population.run(3.0)
        population.reset()
        assert population.time == 0.0
        assert (population.positions == starts).all()
        assert (population.velocities == 0.0).all()
        assert (population.charges == charges).all()
        assert not population.collided.any()
        assert (population.waypoint_index == 0).all()
        # Rerunning after reset reproduces the first sweep exactly.
        second = population.run(3.0)
        assert (first.positions == second.positions).all()
        assert (first.velocities == second.velocities).all()
        assert (first.charges == second.charges).all()
        assert (first.collided == second.collided).all()
        assert (first.min_clearance == second.min_clearance).all()

    def test_constructor_validates_shapes(self):
        workspace = surveillance_city().workspace
        tracker = AggressiveTracker()
        model = BoundedDoubleIntegrator()
        good = np.zeros((4, 3, 3))
        with pytest.raises(ValueError, match=r"\(K, W, 3\)"):
            PopulationSimulation(model, workspace, tracker, np.zeros((4, 3)), np.zeros((4, 3)))
        with pytest.raises(ValueError, match="one row per mission"):
            PopulationSimulation(model, workspace, tracker, good, np.zeros((3, 3)))
        with pytest.raises(ValueError, match="one row per mission"):
            PopulationSimulation(
                model, workspace, tracker, good, np.zeros((4, 3)),
                initial_velocities=np.zeros((2, 3)),
            )

    def test_step_and_run_validate_dt(self):
        workspace = surveillance_city().workspace
        population = PopulationSimulation(
            BoundedDoubleIntegrator(),
            workspace,
            AggressiveTracker(),
            np.full((2, 2, 3), 5.0),
            np.full((2, 3), 4.0),
        )
        with pytest.raises(ValueError):
            population.step(-0.01)
        with pytest.raises(ValueError):
            population.run(1.0, dt=0.0)
