"""Property harness: population == serial on hundreds of synthetic scenarios.

The registered-scenario equivalence suite proves the population plane on
the case-study models; this harness attacks the same property from the
other side, with a *generator*: seeded random choice-tree scenarios —
nondeterministic nodes and environments with varied branching, periods,
depth, and violation placement — each swept by the serial
:class:`~repro.testing.SystematicTester` and the
:class:`~repro.testing.population.PopulationTester` under the same
strategy.  Reports and coverage must match byte for byte on every one,
with delta snapshots fuzzed on and off, prefix sharing fuzzed on and off,
and both random and exhaustive strategies.  Between them the generated
models exercise the trie split/compaction paths, eager snapshotting, the
delta capture/restore chains and the adaptive scheduler on shapes no
hand-written scenario covers.
"""

import random

import pytest

from repro.core.compiler import Program, SoterCompiler
from repro.core.monitor import DeadlineMonitor, MonitorSuite, TopicSafetyMonitor
from repro.core.specs import SafetySpec
from repro.core.topics import Topic
from repro.testing import (
    ExhaustiveStrategy,
    PopulationTester,
    RandomStrategy,
    SystematicTester,
)
from repro.testing.abstractions import AbstractEnvironment, NondeterministicNode
from repro.testing.explorer import ModelInstance

#: How many generated scenarios the harness sweeps (the property budget).
PROPERTY_CASES = 200

#: Finite pools the generator draws from — values are arbitrary but the
#: *shape* axes matter: branching factor, node/environment periods (which
#: set the choice depth within the horizon), and violation thresholds.
_PERIODS = (0.1, 0.2, 0.25, 0.5)
_HORIZONS = (0.5, 0.8, 1.0)
_MENU_VALUES = (-3.0, -1.0, 0.0, 1.0, 2.0, 5.0, 8.0)


def _synthetic_instance(seed: int) -> ModelInstance:
    """A deterministic random choice-tree model for ``seed``.

    Builders must be deterministic per seed (the tester may rebuild), so
    all randomness comes from one seeded generator and every artefact is
    derived from it in a fixed order.
    """
    rng = random.Random(seed)
    node_count = rng.randint(1, 3)
    topics = []
    nodes = []
    monitors = []
    for n in range(node_count):
        topic_count = rng.randint(1, 2)
        menus = {}
        for t in range(topic_count):
            name = f"n{n}t{t}"
            options = rng.sample(_MENU_VALUES, rng.randint(2, 4))
            menus[name] = options
            topics.append(Topic(name, float))
            # Violation placement: ~half the topics get a safety monitor
            # whose threshold sometimes excludes menu values (violating
            # trails exist) and sometimes not (fully safe scenario).
            if rng.random() < 0.5:
                threshold = rng.choice((1.5, 4.0, 10.0))
                monitors.append(
                    TopicSafetyMonitor(
                        name=f"phi_{name}",
                        topic=name,
                        spec=SafetySpec(
                            f"{name}<{threshold}", lambda v, t=threshold: v < t
                        ),
                    )
                )
            elif rng.random() < 0.3:
                # A streak property: only *sustained* bad values violate,
                # exercising the deadline monitor's cross-boundary state.
                monitors.append(
                    DeadlineMonitor(
                        name=f"phi_dl_{name}",
                        topic=name,
                        spec=SafetySpec(f"{name}<=2", lambda v: v <= 2.0),
                        grace=rng.choice((0.1, 0.3)),
                    )
                )
        nodes.append(
            NondeterministicNode(
                name=f"chooser{n}", menus=menus, period=rng.choice(_PERIODS)
            )
        )
    env_menus = {}
    for t in range(rng.randint(0, 2)):
        name = f"envt{t}"
        env_menus[name] = rng.sample(_MENU_VALUES, rng.randint(2, 3))
        topics.append(Topic(name, float))
        if rng.random() < 0.4:
            monitors.append(
                TopicSafetyMonitor(
                    name=f"phi_{name}",
                    topic=name,
                    spec=SafetySpec(f"{name}<5", lambda v: v < 5.0),
                )
            )
    environment = (
        AbstractEnvironment(menus=env_menus, period=rng.choice(_PERIODS))
        if env_menus
        else None
    )
    program = Program(name=f"synthetic-{seed}", topics=topics, nodes=nodes)
    system = SoterCompiler(strict=False).compile(program).system
    return ModelInstance(
        system=system,
        monitors=MonitorSuite(monitors),
        environment=environment,
        horizon=rng.choice(_HORIZONS),
    )


def _record_key(record):
    return (
        record.index,
        record.steps,
        tuple(record.trail or ()),
        tuple(
            (violation.time, violation.monitor, violation.message, violation.state)
            for violation in record.violations
        ),
    )


def _strategy_for(seed: int):
    """Random sweeps mostly; every fourth case enumerates exhaustively."""
    if seed % 4 == 3:
        return ExhaustiveStrategy(max_depth=rngless_depth(seed), max_executions=12)
    return RandomStrategy(seed=seed * 31 + 7, max_executions=10)


def rngless_depth(seed: int) -> int:
    return 2 + (seed // 4) % 3


@pytest.mark.parametrize("seed", range(PROPERTY_CASES))
def test_population_equals_serial_on_synthetic_scenario(seed):
    factory = lambda: _synthetic_instance(seed)
    serial = SystematicTester(factory, _strategy_for(seed), reuse_instances=True)
    population = PopulationTester(
        factory,
        _strategy_for(seed),
        share_prefixes=bool(seed % 3),  # fuzz compact-only vs shared
        snapshot_after=1,
        snapshot_min_steps=1,
        use_delta_snapshots=bool(seed % 2),  # fuzz delta vs whole-state
        delta_chain_limit=1 + seed % 4,
        adaptive_snapshots=bool((seed // 2) % 2),
    )
    serial_report = serial.explore()
    population_report = population.explore()
    serial_keys = [_record_key(r) for r in serial_report.executions]
    population_keys = [_record_key(r) for r in population_report.executions]
    assert population_keys == serial_keys
    assert population.coverage.counts == serial.coverage.counts
    assert population.stats.executions == len(serial_report.executions)
    # Delta mode must actually stay on the delta path (no silent fallback
    # to pickling): the tier-1 gate on the vectorized plane rides on it.
    if bool(seed % 2):
        assert population.stats.pickle_fallbacks == 0


def test_generator_produces_violating_and_safe_scenarios():
    """The property sweep is only meaningful if both outcomes occur."""
    outcomes = set()
    for seed in range(PROPERTY_CASES):
        population = PopulationTester(
            lambda: _synthetic_instance(seed), RandomStrategy(seed=1, max_executions=4)
        )
        outcomes.add(population.explore().ok)
        if len(outcomes) == 2:
            break
    assert outcomes == {True, False}


def test_generator_exercises_snapshot_and_delta_paths():
    """Across the sweep, snapshots are taken, restored, and chained."""
    taken = restored = chained = 0
    for seed in range(0, 40):
        population = PopulationTester(
            lambda: _synthetic_instance(seed),
            RandomStrategy(seed=5, max_executions=16),
            snapshot_after=1,
            snapshot_min_steps=1,
        )
        population.explore()
        stats = population.stats
        taken += stats.snapshots_taken
        restored += stats.delta_restores
        chained += stats.delta_snapshots
    assert taken > 0
    assert restored > 0
    assert chained > 0
