"""Fault injection on the process pool's failure paths.

Pins the three repaired behaviours of ``ParallelTester._run_pool``:

* a worker killed mid-shard produces a clean ``RuntimeError`` naming the
  pool's exit codes (no hang, no silent truncation);
* a scenario that cannot even build surfaces the *original* traceback
  through the worker error channel — at warm-start time on the
  fresh-build path, on the first execution of the reuse path — instead
  of being swallowed;
* an early-stopped run still drains every worker's final ``done``
  payload, so no partial coverage map is silently dropped.
"""

import os
import signal
from dataclasses import dataclass

import pytest

from repro.testing import ParallelTester, RandomStrategy
from repro.testing.scenarios import build_scenario


@dataclass(frozen=True)
class KillOneWorkerFactory:
    """Picklable factory: the first worker to build SIGKILLs itself."""

    sentinel_dir: str

    def __call__(self):
        marker = os.path.join(self.sentinel_dir, "killed")
        try:
            os.mkdir(marker)  # atomic: exactly one worker wins
        except FileExistsError:
            pass
        else:
            os.kill(os.getpid(), signal.SIGKILL)
        return build_scenario("toy-closed-loop")


@dataclass(frozen=True)
class ExplodingFactory:
    """Picklable factory that can never build its scenario."""

    def __call__(self):
        raise ValueError("scenario build exploded")


class TestPoolWorkerFailures:
    def test_sigkilled_worker_raises_naming_exit_codes(self, tmp_path):
        tester = ParallelTester(
            harness_factory=KillOneWorkerFactory(str(tmp_path)),
            strategy=RandomStrategy(seed=0, max_executions=8),
            workers=2,
        )
        with pytest.raises(RuntimeError) as excinfo:
            tester.explore()
        message = str(excinfo.value)
        assert "exit codes" in message
        assert str(-signal.SIGKILL) in message  # the killed worker's -9

    @pytest.mark.parametrize("reuse_instances", [False, True],
                             ids=["warm-start", "reuse-path"])
    def test_unbuildable_scenario_surfaces_original_traceback(self, reuse_instances):
        # reuse_instances=False exercises the _warm_start path (which used
        # to swallow the exception with a bare `except Exception`); the
        # reuse path hits the same factory inside the first execution.
        # Both must surface the builder's own traceback, not a generic
        # pool-death message.
        tester = ParallelTester(
            harness_factory=ExplodingFactory(),
            strategy=RandomStrategy(seed=0, max_executions=4),
            workers=2,
            reuse_instances=reuse_instances,
        )
        with pytest.raises(RuntimeError) as excinfo:
            tester.explore()
        message = str(excinfo.value)
        assert "ValueError" in message
        assert "scenario build exploded" in message
        assert "worker pool died without reporting results" not in message

    def test_early_stop_drains_every_done_payload(self):
        # Every worker's final "done" message carries its partial coverage
        # map; an early-stopped aggregation must still collect all of them
        # or parallel coverage silently under-reports.
        tester = ParallelTester(
            "toy-closed-loop",
            scenario_overrides={"broken_ttf": True},
            strategy=RandomStrategy(seed=0, max_executions=16),
            workers=4,
            track_coverage=True,
        )
        report = tester.explore(stop_at_first_violation=True)
        assert not report.ok
        assert report.completed_workers == report.workers == 4
        assert report.coverage.total_samples > 0

    def test_healthy_pool_reports_all_workers_completed(self):
        tester = ParallelTester(
            "toy-closed-loop",
            strategy=RandomStrategy(seed=1, max_executions=8),
            workers=2,
        )
        report = tester.explore()
        assert report.completed_workers == report.workers == 2
