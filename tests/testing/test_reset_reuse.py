"""Reset-vs-rebuild equivalence: the zero-rebuild hot path changes nothing.

The systematic tester's default reset-and-reuse path must be observably
identical to rebuilding the model instance from the factory for every
execution: byte-identical trails, step counts, and violation sequences,
across every registered scenario and strategy kind, including replay of a
recorded counterexample on a reused instance.
"""

import pytest

from repro.core import Mode, SemanticsEngine
from repro.testing import (
    CoverageGuidedStrategy,
    ExhaustiveStrategy,
    ParallelTester,
    RandomStrategy,
    SystematicTester,
    build_scenario,
    scenario_factory,
)

#: Every registered scenario, with overrides that make violations likely so
#: the equivalence claim covers non-empty violation sequences too.  The
#: multi-drone entries prove the Resettable contract holds for N-vehicle
#: fleet compositions (N stacks, per-vehicle monitors, and the pairwise
#: separation monitor all rewind in place).
SCENARIOS = [
    ("toy-closed-loop", {"broken_ttf": True}),
    ("drone-surveillance", {"include_unsafe_position": True}),
    ("battery-safety-abort", {"include_critical": True}),
    ("faulty-planner", {}),
    ("multi-obstacle-geofence", {"include_breach": True}),
    ("multi-drone-surveillance", {"drones": 2, "include_conflict": True}),
    ("multi-drone-crossing", {}),
    ("rare-branch-geofence", {"include_breach": True}),
    ("deep-menu-surveillance", {"include_unsafe_position": True}),
]


def _record_key(record):
    """Everything an ExecutionRecord observably contains.

    Violation state is compared by type, not repr: some payloads (plans)
    carry a process-global serial number that differs between any two
    sweeps — fresh-build runs included — without being semantic state.
    """
    return (
        record.index,
        record.steps,
        tuple(record.trail or ()),
        tuple(
            (violation.time, violation.monitor, violation.message, type(violation.state).__name__)
            for violation in record.violations
        ),
    )


def _report_keys(report):
    return [_record_key(record) for record in report.executions]


class TestResetVsRebuildEquivalence:
    @pytest.mark.parametrize("name,overrides", SCENARIOS, ids=[s[0] for s in SCENARIOS])
    def test_random_sweep_identical(self, name, overrides):
        factory = scenario_factory(name, **overrides)
        reports = {}
        for reuse in (False, True):
            tester = SystematicTester(
                factory,
                RandomStrategy(seed=3, max_executions=12),
                reuse_instances=reuse,
            )
            reports[reuse] = tester.explore()
        assert _report_keys(reports[True]) == _report_keys(reports[False])
        # The sweeps must actually exercise violations for most scenarios.
        if name != "toy-closed-loop":
            assert not reports[True].ok

    @pytest.mark.parametrize("name,overrides", SCENARIOS, ids=[s[0] for s in SCENARIOS])
    def test_exhaustive_enumeration_identical(self, name, overrides):
        factory = scenario_factory(name, **overrides)
        reports = {}
        for reuse in (False, True):
            tester = SystematicTester(
                factory,
                ExhaustiveStrategy(max_depth=4, max_executions=20),
                reuse_instances=reuse,
            )
            reports[reuse] = tester.explore()
        assert _report_keys(reports[True]) == _report_keys(reports[False])

    @pytest.mark.parametrize(
        "name,overrides",
        [
            ("rare-branch-geofence", {"include_breach": True}),
            ("deep-menu-surveillance", {}),
        ],
        ids=["rare-branch-geofence", "deep-menu-surveillance"],
    )
    def test_coverage_guided_sweep_identical(self, name, overrides):
        # The coverage plane obeys the reset contract too: the per-execution
        # map is cleared by the in-place instance reset while the cumulative
        # map lives with the tester, so reset-and-reuse changes neither the
        # explored executions nor the accumulated coverage.
        factory = scenario_factory(name, **overrides)
        reports = {}
        for reuse in (False, True):
            tester = SystematicTester(
                factory,
                CoverageGuidedStrategy(seed=3, max_executions=12),
                reuse_instances=reuse,
            )
            reports[reuse] = tester.explore()
        assert _report_keys(reports[True]) == _report_keys(reports[False])
        assert reports[True].coverage.counts == reports[False].coverage.counts
        assert reports[True].coverage

    def test_replay_on_reused_instance_matches_original(self):
        factory = scenario_factory("drone-surveillance", include_unsafe_position=True)
        tester = SystematicTester(
            factory, RandomStrategy(seed=5, max_executions=20), reuse_instances=True
        )
        report = tester.explore()
        counterexample = report.first_counterexample()
        assert counterexample is not None
        # Replay runs on the same (reset) instance the sweep just used.
        replayed = tester.replay(counterexample.trail, index=counterexample.index)
        assert _record_key(replayed) == _record_key(counterexample)
        # And the exploration strategy survives the replay untouched.
        assert isinstance(tester.strategy, RandomStrategy)

    def test_replay_on_reused_multi_drone_instance_matches_original(self):
        # A separation counterexample replays on the reused 2-drone fleet
        # instance: the composed system, per-vehicle monitors and the
        # pairwise separation monitor all rewind in place.
        factory = scenario_factory(
            "multi-drone-surveillance", drones=2, include_conflict=True
        )
        tester = SystematicTester(
            factory, RandomStrategy(seed=5, max_executions=25), reuse_instances=True
        )
        report = tester.explore()
        counterexample = report.first_counterexample()
        assert counterexample is not None
        assert any(v.monitor == "phi_separation" for v in counterexample.violations)
        replayed = tester.replay(counterexample.trail, index=counterexample.index)
        assert _record_key(replayed) == _record_key(counterexample)

    def test_reuse_builds_the_instance_exactly_once(self):
        builds = []
        base = scenario_factory("toy-closed-loop")

        def counting_factory():
            builds.append(1)
            return base()

        tester = SystematicTester(
            counting_factory, RandomStrategy(seed=0, max_executions=8), reuse_instances=True
        )
        tester.explore()
        assert len(builds) == 1

    def test_fresh_path_builds_per_execution(self):
        builds = []
        base = scenario_factory("toy-closed-loop")

        def counting_factory():
            builds.append(1)
            return base()

        tester = SystematicTester(
            counting_factory, RandomStrategy(seed=0, max_executions=8), reuse_instances=False
        )
        tester.explore()
        assert len(builds) == 8


class TestParallelReuseEquivalence:
    def test_parallel_random_identical_across_reuse(self):
        reports = {}
        for reuse in (False, True):
            tester = ParallelTester(
                scenario="multi-obstacle-geofence",
                scenario_overrides={"include_breach": True},
                strategy=RandomStrategy(seed=9, max_executions=10),
                workers=2,
                reuse_instances=reuse,
            )
            reports[reuse] = tester.explore()
        assert _report_keys(reports[True]) == _report_keys(reports[False])
        assert reports[True].all_confirmed

    def test_parallel_exhaustive_matches_serial_with_reuse(self):
        serial = SystematicTester(
            scenario_factory("toy-closed-loop", broken_ttf=True),
            ExhaustiveStrategy(max_depth=3, max_executions=40),
            reuse_instances=True,
        ).explore()
        parallel = ParallelTester(
            scenario="toy-closed-loop",
            scenario_overrides={"broken_ttf": True},
            strategy=ExhaustiveStrategy(max_depth=3, max_executions=40),
            workers=2,
            reuse_instances=True,
        ).explore()
        assert _report_keys(parallel) == _report_keys(serial)


class TestEngineReset:
    def test_engine_reset_restores_construction_state(self):
        instance = build_scenario("toy-closed-loop")
        engine = SemanticsEngine(instance.system)
        dm = instance.system.modules[0].decision
        for _ in range(6):
            engine.set_input("state", 8.9)
            engine.step()
        assert engine.current_time > 0.0
        assert engine.stats.node_firings > 0
        engine.reset()
        assert engine.current_time == 0.0
        assert engine.stats.node_firings == 0
        assert engine.stats.time_progress_steps == 0
        assert engine.read_topic("state") is None
        assert engine.calendar.next_time() == 0.0
        assert dm.mode is Mode.SC and dm.switches == []
        # SC enabled, AC disabled: the boot output-enable map.
        module = instance.system.modules[0]
        assert engine.output_enabled[module.spec.safe.name]
        assert not engine.output_enabled[module.spec.advanced.name]

    def test_reset_engine_reruns_identically(self):
        instance = build_scenario("toy-closed-loop")
        engine = SemanticsEngine(instance.system)

        def run():
            trace = []
            for _ in range(8):
                engine.set_input("state", 7.5)
                time, fired = engine.step()
                trace.append((time, tuple(fired), engine.read_topic("cmd")))
            return trace

        first = run()
        engine.reset()
        assert run() == first

    def test_monitor_suite_reset_forgets_violations(self):
        instance = build_scenario("multi-obstacle-geofence", include_breach=True)
        tester = SystematicTester(
            lambda: instance, RandomStrategy(seed=1, max_executions=6), reuse_instances=True
        )
        report = tester.explore()
        assert not report.ok
        instance.monitors.reset()
        assert instance.monitors.ok
        assert instance.monitors.violations == []


class TestStrategyPublicApi:
    def test_exhaustive_exposes_exhaustion_publicly(self):
        strategy = ExhaustiveStrategy(max_depth=4)
        assert not strategy.is_exhausted
        assert strategy.execution_started()
        strategy.choose(2)
        assert strategy.execution_started()  # the second branch
        strategy.choose(2)
        assert not strategy.execution_started()  # odometer exhausted
        assert strategy.is_exhausted

    def test_random_is_never_exhausted(self):
        strategy = RandomStrategy(seed=0, max_executions=2)
        assert strategy.execution_started()
        assert not strategy.is_exhausted

    def test_replay_exhausts_after_its_single_run(self):
        from repro.testing import ReplayStrategy

        strategy = ReplayStrategy(trail=[1, 0])
        assert not strategy.is_exhausted
        assert strategy.execution_started()
        assert not strategy.has_more_executions()
        assert strategy.is_exhausted
        assert not strategy.execution_started()

    def test_minimal_third_party_strategy_still_works(self):
        class Minimal:
            def __init__(self):
                self.runs = 0

            def choose(self, options, label=""):
                return 0

            def begin_execution(self):
                self.runs += 1

            def has_more_executions(self):
                return self.runs < 3

        tester = SystematicTester(
            scenario_factory("toy-closed-loop"), Minimal(), reuse_instances=True
        )
        report = tester.explore()
        assert report.execution_count == 3


class TestReportCaching:
    def test_incremental_failing_and_totals(self):
        from repro.core.monitor import Violation
        from repro.testing.explorer import ExecutionRecord, TestReport

        report = TestReport()
        bad = Violation(time=0.5, monitor="m", message="boom")
        report.add(ExecutionRecord(index=0, steps=3, violations=[]))
        assert report.ok and report.total_violations == 0
        report.add(ExecutionRecord(index=1, steps=3, violations=[bad]))
        report.add(ExecutionRecord(index=2, steps=3, violations=[bad, bad]))
        assert [r.index for r in report.failing] == [1, 2]
        assert report.total_violations == 3
        assert report.first_counterexample().index == 1
        # Direct appends (the old API) are still folded in lazily.
        report.executions.append(ExecutionRecord(index=3, steps=1, violations=[bad]))
        assert [r.index for r in report.failing] == [1, 2, 3]
        assert report.total_violations == 4

    def test_invalidate_after_list_surgery(self):
        from repro.core.monitor import Violation
        from repro.testing.explorer import ExecutionRecord, TestReport

        bad = Violation(time=0.5, monitor="m", message="boom")
        report = TestReport()
        for index in range(4):
            report.add(ExecutionRecord(index=index, steps=1, violations=[bad] if index % 2 else []))
        assert len(report.failing) == 2
        report.executions.sort(key=lambda record: -record.index)
        report.invalidate_caches()
        assert [r.index for r in report.failing] == [3, 1]
        del report.executions[1:]
        assert len(report.failing) == 1  # shrink is detected automatically
        assert report.total_violations == 1
