"""Differential proof: an N=1 fleet composition IS the single-drone stack.

The multi-drone tentpole threads per-vehicle namespaces through every
layer of the stack (topics, nodes, modules, monitors).  These tests pin
the refactor's central guarantee: composing a fleet of **one** through
the namespace/merge machinery produces an exploration that is
bit-identical — trails, step counts, violation sequences — to the
original ``drone-surveillance`` scenario, under random sweeps, exhaustive
enumeration, and process-pool sharding alike.  The 2-drone cases then
show the composition actually grows the behaviour (separation
counterexamples exist and replay).
"""

import pytest

from repro.testing import (
    ExhaustiveStrategy,
    ParallelTester,
    RandomStrategy,
    SystematicTester,
    scenario_factory,
)

#: The single-drone scenario and its N=1 fleet composition, same knobs.
SINGLE = ("drone-surveillance", {"include_unsafe_position": True})
FLEET_OF_ONE = ("multi-drone-surveillance", {"drones": 1, "include_unsafe_position": True})


def _record_key(record):
    """Everything an ExecutionRecord observably contains (cf. test_reset_reuse)."""
    return (
        record.index,
        record.steps,
        tuple(record.trail or ()),
        tuple(
            (violation.time, violation.monitor, violation.message, type(violation.state).__name__)
            for violation in record.violations
        ),
    )


def _report_keys(report):
    return [_record_key(record) for record in report.executions]


class TestFleetOfOneIsBitIdentical:
    @pytest.mark.parametrize("reuse", [True, False], ids=["reset-reuse", "fresh-build"])
    def test_random_sweeps_identical(self, reuse):
        reports = {}
        for name, overrides in (SINGLE, FLEET_OF_ONE):
            tester = SystematicTester(
                scenario_factory(name, **overrides),
                RandomStrategy(seed=3, max_executions=15),
                reuse_instances=reuse,
            )
            reports[name] = tester.explore()
        assert _report_keys(reports[SINGLE[0]]) == _report_keys(reports[FLEET_OF_ONE[0]])
        # The sweep must exercise real violations, or the claim is hollow.
        assert not reports[SINGLE[0]].ok

    def test_exhaustive_enumerations_identical(self):
        reports = {}
        for name, overrides in (SINGLE, FLEET_OF_ONE):
            tester = SystematicTester(
                scenario_factory(name, **overrides),
                ExhaustiveStrategy(max_depth=4, max_executions=30),
            )
            reports[name] = tester.explore()
        assert _report_keys(reports[SINGLE[0]]) == _report_keys(reports[FLEET_OF_ONE[0]])
        assert reports[SINGLE[0]].execution_count > 1

    def test_parallel_sweeps_identical(self):
        reports = {}
        for name, overrides in (SINGLE, FLEET_OF_ONE):
            tester = ParallelTester(
                scenario=name,
                scenario_overrides=overrides,
                strategy=RandomStrategy(seed=7, max_executions=12),
                workers=2,
            )
            reports[name] = tester.explore()
        assert _report_keys(reports[SINGLE[0]]) == _report_keys(reports[FLEET_OF_ONE[0]])
        assert reports[FLEET_OF_ONE[0]].all_confirmed
        assert not reports[FLEET_OF_ONE[0]].ok

    def test_safe_variant_also_identical(self):
        # No violations anywhere: the equivalence is not an artefact of the
        # unsafe-position menus.
        reports = {}
        for name, overrides in (("drone-surveillance", {}), ("multi-drone-surveillance", {"drones": 1})):
            tester = SystematicTester(
                scenario_factory(name, **overrides),
                RandomStrategy(seed=11, max_executions=10),
            )
            reports[name] = tester.explore()
        assert _report_keys(reports["drone-surveillance"]) == _report_keys(
            reports["multi-drone-surveillance"]
        )
        assert reports["drone-surveillance"].ok


class TestTwoDroneExploration:
    def test_conflict_counterexamples_found_and_replayable(self):
        factory = scenario_factory(
            "multi-drone-surveillance", drones=2, include_conflict=True
        )
        tester = SystematicTester(factory, RandomStrategy(seed=2, max_executions=25))
        report = tester.explore()
        counterexample = report.first_counterexample()
        assert counterexample is not None
        assert any(v.monitor == "phi_separation" for v in counterexample.violations)
        replayed = tester.replay(counterexample.trail, index=counterexample.index)
        assert _record_key(replayed) == _record_key(counterexample)

    def test_default_two_drone_menus_are_conflict_free(self):
        tester = SystematicTester(
            scenario_factory("multi-drone-surveillance", drones=2),
            RandomStrategy(seed=5, max_executions=15),
        )
        assert tester.explore().ok

    def test_parallel_matches_serial_on_the_crossing_scenario(self):
        serial = SystematicTester(
            scenario_factory("multi-drone-crossing"),
            ExhaustiveStrategy(max_depth=4, max_executions=90),
        ).explore()
        parallel = ParallelTester(
            scenario="multi-drone-crossing",
            strategy=ExhaustiveStrategy(max_depth=4, max_executions=90),
            workers=2,
        ).explore()
        assert _report_keys(parallel) == _report_keys(serial)
        assert not serial.ok  # crossing conflicts are plentiful by design
        assert parallel.all_confirmed

    def test_parallel_early_stop_on_separation_violation(self):
        tester = ParallelTester(
            scenario="multi-drone-crossing",
            strategy=RandomStrategy(seed=1, max_executions=40),
            workers=2,
        )
        report = tester.explore(stop_at_first_violation=True)
        assert not report.ok
        assert report.execution_count <= 40
        assert report.all_confirmed

    def test_three_drone_fleet_shards_like_any_scenario(self):
        report = ParallelTester(
            scenario="multi-drone-surveillance",
            scenario_overrides={"drones": 3, "include_conflict": True},
            strategy=RandomStrategy(seed=9, max_executions=12),
            workers=3,
        ).explore()
        assert report.execution_count == 12
        assert report.all_confirmed
