"""End-to-end equivalence of the batched/cached safety-query plane.

The tentpole guarantee of the query-plane refactor: routing the stack's
clearance checks through the ClearanceField memo and evaluating monitors
in vectorised windows changes *nothing* about what the systematic tester
observes — same violations, same times, same trails.
"""

import numpy as np
import pytest

from repro.apps.scenarios import _shared_world
from repro.testing import RandomStrategy, SystematicTester, scenario_factory


def _report_key(report):
    return [
        (
            record.index,
            record.steps,
            tuple((v.time, v.monitor, v.message) for v in record.violations),
            tuple(record.trail or ()),
        )
        for record in report.executions
    ]


def _sweep(executions=40, *, use_query_cache=True, monitor_window=64, unsafe=True, seed=11):
    factory = scenario_factory(
        "drone-surveillance",
        horizon=2.0,
        include_unsafe_position=unsafe,
        use_query_cache=use_query_cache,
    )
    tester = SystematicTester(
        factory,
        strategy=RandomStrategy(seed=seed, max_executions=executions),
        monitor_window=monitor_window,
    )
    return tester.explore()


class TestQueryPlaneEquivalence:
    def test_cached_plane_reproduces_uncached_reports(self):
        cached = _sweep(use_query_cache=True)
        uncached = _sweep(use_query_cache=False)
        assert _report_key(cached) == _report_key(uncached)
        assert not cached.ok  # the unsafe variant must produce violations

    def test_windowed_monitors_reproduce_per_step_reports(self):
        windowed = _sweep(monitor_window=64)
        per_step = _sweep(monitor_window=1)
        assert _report_key(windowed) == _report_key(per_step)

    def test_geofence_scenario_unaffected(self):
        factory = scenario_factory("multi-obstacle-geofence", include_breach=True)
        reports = [
            SystematicTester(
                factory,
                strategy=RandomStrategy(seed=5, max_executions=24),
                monitor_window=window,
            ).explore()
            for window in (1, 64)
        ]
        assert _report_key(reports[0]) == _report_key(reports[1])
        assert not reports[0].ok

    def test_monitor_window_validated(self):
        with pytest.raises(ValueError):
            SystematicTester(lambda: None, monitor_window=0)


class TestWarmOracle:
    def test_scenario_builders_share_one_world(self):
        factory = scenario_factory("drone-surveillance", horizon=1.0)
        first = factory()
        second = factory()
        assert first is not second  # fresh model per execution...
        world = _shared_world()
        assert world is _shared_world()  # ...but one immutable world per process

    def test_clearance_field_cache_warms_across_executions(self):
        # Since the dense whole-workspace grid (ClearanceField.densify),
        # the shared oracle is pre-warmed at world build: in-grid queries
        # are array lookups, and only off-grid cells touch the lazy dict.
        world = _shared_world()
        field = world.workspace.clearance_field()
        assert field.dense_cells > 0, "the shared world densifies its field"
        before_hits = field.stats.dense_hits
        _sweep(executions=4, unsafe=False)
        assert field.stats.dense_hits > before_hits, (
            "explored executions must hit the shared dense grid"
        )
        lazy_before = len(field)
        _sweep(executions=4, unsafe=False)
        # Re-running the same workload stays on the precomputed cells.
        assert len(field) == lazy_before

    def test_disabled_cache_builds_private_world(self):
        factory = scenario_factory("drone-surveillance", horizon=1.0, use_query_cache=False)
        instance = factory()
        assert instance.system is not None
