"""Tests for the parallel systematic-testing engine.

The load-bearing properties:

* determinism — same seed ⇒ the parallel tester reports exactly the
  violation set and replayable trails of the serial tester, regardless of
  worker count;
* partitioning — sharding exhaustive enumeration by trail prefix covers
  exactly the serial enumeration, no more, no less;
* confirmation — every parallel-found counterexample replays to the same
  violation on the serial engine.
"""

import pytest

from repro.testing import (
    ExhaustiveStrategy,
    ModelInstance,
    ParallelTester,
    RandomStrategy,
    ReplayStrategy,
    SystematicTester,
    TestHarness,
    record_trail,
    scenario_factory,
)


def _trails(report):
    return sorted(tuple(record.trail) for record in report.executions)


def _violation_keys(report):
    return sorted(
        (violation.time, violation.monitor, violation.message)
        for record in report.executions
        for violation in record.violations
    )


class TestStrategySharding:
    def test_random_strategy_is_deterministic_per_execution_index(self):
        a = RandomStrategy(seed=7, max_executions=10)
        choices = {}
        for index in range(6):
            a.begin_execution()
            choices[index] = [a.choose(4) for _ in range(8)]
        b = RandomStrategy(seed=7, max_executions=10)
        for index in (5, 1, 3):  # out of order, as a worker would run them
            b.seek(index)
            b.begin_execution()
            assert [b.choose(4) for _ in range(8)] == choices[index]

    def test_random_strategy_records_replayable_trail(self):
        strategy = RandomStrategy(seed=0)
        strategy.begin_execution()
        made = [strategy.choose(3) for _ in range(5)]
        assert record_trail(strategy) == made
        replay = ReplayStrategy(trail=record_trail(strategy))
        replay.begin_execution()
        assert [replay.choose(3) for _ in range(5)] == made

    def test_seek_rejects_negative_index(self):
        with pytest.raises(ValueError):
            RandomStrategy(seed=0).seek(-1)

    def test_exhaustive_prefix_pins_leading_choices(self):
        strategy = ExhaustiveStrategy(max_depth=8, prefix=(1,))
        seen = set()
        while strategy.has_more_executions():
            strategy.begin_execution()
            if strategy._exhausted:
                break
            seen.add((strategy.choose(2), strategy.choose(3)))
        assert seen == {(1, j) for j in range(3)}

    def test_exhaustive_prefixes_partition_the_tree(self):
        def enumerate_with(prefix):
            strategy = ExhaustiveStrategy(max_depth=8, prefix=prefix)
            seen = []
            while strategy.has_more_executions():
                strategy.begin_execution()
                if strategy._exhausted:
                    break
                strategy.choose(2)
                strategy.choose(3)
                seen.append(tuple(record_trail(strategy)))
            return seen

        whole = enumerate_with(())
        sharded = enumerate_with((0,)) + enumerate_with((1,))
        assert sorted(sharded) == sorted(whole)
        assert len(whole) == 6

    def test_prefix_must_fit_under_max_depth(self):
        with pytest.raises(ValueError):
            ExhaustiveStrategy(max_depth=2, prefix=(0, 1))


class TestParallelRandomEquivalence:
    def test_same_seed_same_trails_and_violations_safe_model(self):
        serial = SystematicTester(
            scenario_factory("toy-closed-loop"),
            strategy=RandomStrategy(seed=3, max_executions=12),
        )
        serial_report = serial.explore()
        parallel = ParallelTester(
            "toy-closed-loop",
            strategy=RandomStrategy(seed=3, max_executions=12),
            workers=3,
        )
        parallel_report = parallel.explore()
        assert parallel_report.execution_count == serial_report.execution_count
        assert _trails(parallel_report) == _trails(serial_report)
        assert parallel_report.ok and serial_report.ok

    def test_same_seed_same_violation_set_broken_model(self):
        strategy = RandomStrategy(seed=1, max_executions=16)
        serial = SystematicTester(
            scenario_factory("toy-closed-loop", broken_ttf=True), strategy=strategy
        )
        serial_report = serial.explore()
        assert not serial_report.ok
        parallel = ParallelTester(
            "toy-closed-loop",
            scenario_overrides={"broken_ttf": True},
            strategy=RandomStrategy(seed=1, max_executions=16),
            workers=4,
        )
        parallel_report = parallel.explore()
        assert _trails(parallel_report) == _trails(serial_report)
        assert _violation_keys(parallel_report) == _violation_keys(serial_report)

    def test_worker_count_does_not_change_the_result(self):
        reports = [
            ParallelTester(
                "toy-closed-loop",
                scenario_overrides={"broken_ttf": True},
                strategy=RandomStrategy(seed=5, max_executions=10),
                workers=workers,
            ).explore()
            for workers in (1, 2, 4)
        ]
        assert _trails(reports[0]) == _trails(reports[1]) == _trails(reports[2])
        assert (
            _violation_keys(reports[0])
            == _violation_keys(reports[1])
            == _violation_keys(reports[2])
        )


class TestParallelExhaustivePartitioning:
    def test_partition_covers_exactly_the_serial_enumeration(self):
        serial = SystematicTester(
            scenario_factory("multi-obstacle-geofence", horizon=0.6),
            strategy=ExhaustiveStrategy(max_depth=10, max_executions=2000),
        )
        serial_report = serial.explore()
        parallel = ParallelTester(
            "multi-obstacle-geofence",
            scenario_overrides={"horizon": 0.6},
            strategy=ExhaustiveStrategy(max_depth=10, max_executions=2000),
            workers=3,
        )
        parallel_report = parallel.explore()
        assert _trails(parallel_report) == _trails(serial_report)
        assert parallel_report.partitions  # disjoint subtrees were assigned

    def test_partition_prefixes_are_disjoint_and_complete(self):
        parallel = ParallelTester(
            "multi-obstacle-geofence",
            scenario_overrides={"horizon": 0.6},
            strategy=ExhaustiveStrategy(max_depth=10),
            workers=3,
        )
        prefixes = parallel.partition_prefixes(target=3)
        assert len(set(prefixes)) == len(prefixes)
        # Every prefix extends a distinct first choice of the 3-option menu.
        assert sorted(prefix[0] for prefix in prefixes) == [0, 1, 2]

    def test_truncating_budget_matches_serial_exactly(self):
        # max_executions cuts the 27-execution enumeration short; the
        # parallel tester must keep exactly the serial prefix of the
        # depth-first order, not num_subtrees x max_executions records.
        serial = SystematicTester(
            scenario_factory("multi-obstacle-geofence", horizon=0.6),
            strategy=ExhaustiveStrategy(max_depth=10, max_executions=5),
        )
        serial_report = serial.explore()
        assert serial_report.execution_count == 5
        parallel = ParallelTester(
            "multi-obstacle-geofence",
            scenario_overrides={"horizon": 0.6},
            strategy=ExhaustiveStrategy(max_depth=10, max_executions=5),
            workers=3,
        )
        parallel_report = parallel.explore()
        assert parallel_report.execution_count == 5
        assert _trails(parallel_report) == _trails(serial_report)

    def test_exhaustive_finds_the_violations_serial_finds(self):
        strategy = ExhaustiveStrategy(max_depth=10, max_executions=2000)
        serial = SystematicTester(
            scenario_factory("multi-obstacle-geofence", horizon=0.6, include_breach=True),
            strategy=strategy,
        )
        serial_report = serial.explore()
        assert not serial_report.ok
        parallel = ParallelTester(
            "multi-obstacle-geofence",
            scenario_overrides={"horizon": 0.6, "include_breach": True},
            strategy=ExhaustiveStrategy(max_depth=10, max_executions=2000),
            workers=4,
        )
        parallel_report = parallel.explore()
        assert _violation_keys(parallel_report) == _violation_keys(serial_report)
        assert parallel_report.all_confirmed


class TestCounterexampleConfirmation:
    def test_every_counterexample_replays_on_the_serial_engine(self):
        parallel = ParallelTester(
            "toy-closed-loop",
            scenario_overrides={"broken_ttf": True},
            strategy=RandomStrategy(seed=0, max_executions=12),
            workers=3,
        )
        report = parallel.explore()
        assert not report.ok
        assert report.confirmations
        assert report.all_confirmed
        serial = SystematicTester(scenario_factory("toy-closed-loop", broken_ttf=True))
        for confirmation in report.confirmations:
            replayed = serial.replay(confirmation.trail)
            assert replayed.violations

    def test_early_stop_returns_a_confirmed_counterexample(self):
        parallel = ParallelTester(
            "faulty-planner",
            strategy=RandomStrategy(seed=0, max_executions=64),
            workers=2,
        )
        report = parallel.explore(stop_at_first_violation=True)
        assert not report.ok
        # Early stop prunes the sweep: nowhere near all 64 executions ran.
        assert report.execution_count < 64
        assert report.all_confirmed


class TestParallelTesterAPI:
    def test_requires_exactly_one_workload(self):
        with pytest.raises(ValueError):
            ParallelTester()
        with pytest.raises(ValueError):
            ParallelTester(
                "toy-closed-loop",
                harness_factory=scenario_factory("toy-closed-loop"),
            )

    def test_rejects_replay_strategy(self):
        with pytest.raises(TypeError):
            ParallelTester("toy-closed-loop", strategy=ReplayStrategy(trail=[0]))

    def test_overrides_require_scenario(self):
        with pytest.raises(ValueError):
            ParallelTester(
                harness_factory=scenario_factory("toy-closed-loop"),
                scenario_overrides={"broken_ttf": True},
            )

    def test_accepts_plain_harness_factory(self):
        report = ParallelTester(
            harness_factory=scenario_factory("toy-closed-loop"),
            strategy=RandomStrategy(seed=0, max_executions=4),
            workers=2,
        ).explore()
        assert report.execution_count == 4

    def test_single_worker_runs_inline(self):
        report = ParallelTester(
            "toy-closed-loop",
            strategy=RandomStrategy(seed=0, max_executions=3),
            workers=1,
        ).explore()
        assert report.execution_count == 3
        assert report.workers == 1

    def test_model_instance_rename_keeps_alias(self):
        assert TestHarness is ModelInstance
        assert ModelInstance.__test__ is False
