"""Tests for the systematic testing engine (strategies, abstractions, explorer)."""

import pytest

from repro.core import Program, SafetySpec, SoterCompiler, Topic
from repro.core.monitor import MonitorSuite, TopicSafetyMonitor
from repro.testing import (
    AbstractEnvironment,
    BoundedAsynchronyScheduler,
    ExhaustiveStrategy,
    NondeterministicNode,
    RandomStrategy,
    ReplayStrategy,
    SystematicTester,
    TestHarness,
    constant_environment,
)

from ..core.toy import build_toy_module


class TestStrategies:
    def test_random_strategy_is_seeded_and_bounded(self):
        a = RandomStrategy(seed=1, max_executions=5)
        b = RandomStrategy(seed=1, max_executions=5)
        assert [a.choose(4) for _ in range(10)] == [b.choose(4) for _ in range(10)]
        for _ in range(5):
            assert a.has_more_executions()
            a.begin_execution()
        assert not a.has_more_executions()

    def test_random_strategy_validation(self):
        with pytest.raises(ValueError):
            RandomStrategy(max_executions=0)
        with pytest.raises(ValueError):
            RandomStrategy().choose(0)

    def test_exhaustive_strategy_enumerates_all_combinations(self):
        strategy = ExhaustiveStrategy(max_depth=8)
        seen = set()
        while strategy.has_more_executions():
            strategy.begin_execution()
            if strategy._exhausted:
                break
            trail = (strategy.choose(2), strategy.choose(3))
            seen.add(trail)
        assert seen == {(i, j) for i in range(2) for j in range(3)}

    def test_exhaustive_strategy_depth_bound(self):
        strategy = ExhaustiveStrategy(max_depth=1)
        strategy.begin_execution()
        assert strategy.choose(3) == 0
        assert strategy.choose(3) == 0  # beyond depth: defaults to option 0

    def test_replay_strategy(self):
        strategy = ReplayStrategy(trail=[2, 1])
        strategy.begin_execution()
        assert strategy.choose(3) == 2
        assert strategy.choose(3) == 1
        assert strategy.choose(3) == 0  # past the trail
        assert not strategy.has_more_executions()


class TestAbstractions:
    def test_nondeterministic_node_uses_strategy(self):
        node = NondeterministicNode("abs", menus={"out": ["a", "b", "c"]}, period=0.1)
        node.bind_strategy(ReplayStrategy(trail=[2]))
        node.strategy.begin_execution()
        assert node.step(0.0, {})["out"] == "c"
        assert node.choices_made == 1

    def test_nondeterministic_node_defaults_to_first_option(self):
        node = NondeterministicNode("abs", menus={"out": ["a", "b"]})
        assert node.step(0.0, {})["out"] == "a"

    def test_menus_must_be_non_empty(self):
        with pytest.raises(ValueError):
            NondeterministicNode("abs", menus={})
        with pytest.raises(ValueError):
            NondeterministicNode("abs", menus={"out": []})

    def test_abstract_environment_injects_choices(self):
        from repro.core import ConstantNode

        program = Program(name="p", topics=[Topic("x")], nodes=[ConstantNode("n", {"y": 1}, period=0.1)])
        system = SoterCompiler().compile(program).system
        from repro.core.semantics import SemanticsEngine

        engine = SemanticsEngine(system)
        environment = AbstractEnvironment(menus={"x": [10, 20]}, period=0.1)
        environment.bind_strategy(ReplayStrategy(trail=[1]))
        environment.strategy.begin_execution()
        environment.apply(engine, 0.0)
        assert engine.read_topic("x") == 20

    def test_constant_environment(self):
        environment = constant_environment({"x": 5})
        assert environment.menus == {"x": [5]}

    def test_environment_validation(self):
        with pytest.raises(ValueError):
            AbstractEnvironment(menus={"x": []})
        with pytest.raises(ValueError):
            AbstractEnvironment(menus={"x": [1]}, period=0.0)


class TestBoundedAsynchrony:
    def test_ordering_is_a_permutation(self):
        scheduler = BoundedAsynchronyScheduler(RandomStrategy(seed=0))
        due = ["a", "b", "c"]
        ordered = scheduler.order(due)
        assert sorted(ordered) == sorted(due)

    def test_single_node_needs_no_choice(self):
        scheduler = BoundedAsynchronyScheduler(RandomStrategy(seed=0))
        assert scheduler.order(["a"]) == ["a"]
        assert scheduler.orderings_chosen == 0

    def test_large_sets_keep_default_order(self):
        scheduler = BoundedAsynchronyScheduler(RandomStrategy(seed=0), max_permuted=2)
        due = ["a", "b", "c", "d"]
        assert scheduler.order(due) == due

    def test_max_permuted_validation(self):
        with pytest.raises(ValueError):
            BoundedAsynchronyScheduler(RandomStrategy(), max_permuted=0)


class TestSystematicTester:
    def _toy_harness(self):
        """The toy RTA module driven by a nondeterministic environment."""
        program = Program(
            name="toy-testing",
            topics=[Topic("state", float, None), Topic("cmd", float, 0.0)],
            modules=[build_toy_module()],
        )
        system = SoterCompiler().compile(program).system
        monitors = MonitorSuite(
            [TopicSafetyMonitor("phi_safe", "state", SafetySpec("x<9", lambda x: x < 9.0))]
        )
        environment = AbstractEnvironment(menus={"state": [0.0, 4.0, 8.0]}, period=0.1)
        return TestHarness(system=system, monitors=monitors, environment=environment, horizon=1.0)

    def test_random_exploration_finds_no_violation_in_safe_model(self):
        tester = SystematicTester(self._toy_harness, strategy=RandomStrategy(seed=0, max_executions=10))
        report = tester.explore()
        assert report.execution_count == 10
        assert report.ok
        assert report.first_counterexample() is None
        assert "10 execution" in report.summary()

    def test_random_exploration_detects_violations(self):
        def unsafe_harness():
            harness = self._toy_harness()
            # An environment able to put the plant beyond the cliff directly.
            harness.environment = AbstractEnvironment(menus={"state": [5.0, 9.5]}, period=0.1)
            return harness

        tester = SystematicTester(unsafe_harness, strategy=RandomStrategy(seed=1, max_executions=20))
        report = tester.explore(stop_at_first_violation=True)
        assert not report.ok
        counterexample = report.first_counterexample()
        assert counterexample is not None
        assert counterexample.violations

    def test_exhaustive_exploration_covers_choices(self):
        def tiny_harness():
            harness = self._toy_harness()
            harness.horizon = 0.1
            harness.environment = AbstractEnvironment(menus={"state": [0.0, 8.0]}, period=0.1)
            return harness

        tester = SystematicTester(
            tiny_harness, strategy=ExhaustiveStrategy(max_depth=6, max_executions=200)
        )
        report = tester.explore()
        assert report.execution_count > 1
        assert report.ok
