"""The mode/region coverage plane: map laws, tracking, guidance, sharding.

Covers the four claims the coverage plane makes:

* :class:`CoverageMap` merging is associative, commutative and
  order-independent (what lets the parallel tester aggregate shard maps
  in completion order), and maps are picklable;
* the :class:`CoverageTracker` feeds identical coverage through the
  per-step and windowed monitor paths and never perturbs violations;
* :class:`CoverageGuidedStrategy` is deterministic in its seed, its
  recorded trails replay bit-identically, and it actually covers the
  coverage-hostile scenarios;
* a parallel random sweep's merged coverage equals the serial sweep's
  map exactly.
"""

import pickle
import random

import pytest

from repro.core.decision import Mode
from repro.core.regions import Region
from repro.testing import (
    CoverageGuidedStrategy,
    CoverageMap,
    CoverageTracker,
    ParallelTester,
    RandomStrategy,
    SystematicTester,
    build_scenario,
    merge_maps,
    scenario_factory,
    vehicle_label,
)

MODES = [mode.value for mode in Mode]
REGIONS = [region.value for region in Region]


def _random_map(rng: random.Random, entries: int = 12) -> CoverageMap:
    cm = CoverageMap()
    for _ in range(entries):
        cm.record(
            rng.choice(["drone0/MP", "drone1/MP", "BatterySafety"]),
            rng.choice(MODES),
            rng.choice(REGIONS),
            count=rng.randrange(1, 5),
        )
    return cm


class TestCoverageMapLaws:
    def test_merge_is_commutative(self):
        rng = random.Random(7)
        a, b = _random_map(rng), _random_map(rng)
        assert a.copy().merge(b).counts == b.copy().merge(a).counts

    def test_merge_is_associative(self):
        rng = random.Random(8)
        a, b, c = (_random_map(rng) for _ in range(3))
        left = a.copy().merge(b).merge(c)
        right = a.copy().merge(b.copy().merge(c))
        assert left.counts == right.counts

    def test_merge_is_order_independent_over_many_maps(self):
        rng = random.Random(9)
        maps = [_random_map(rng) for _ in range(6)]
        forward = merge_maps(maps)
        backward = merge_maps(reversed(maps))
        shuffled = list(maps)
        rng.shuffle(shuffled)
        assert forward.counts == backward.counts == merge_maps(shuffled).counts
        assert forward.total_samples == sum(m.total_samples for m in maps)

    def test_merge_skips_none_and_identity(self):
        rng = random.Random(10)
        a = _random_map(rng)
        assert merge_maps([None, a, None]).counts == a.counts
        assert a.copy().merge(CoverageMap()).counts == a.counts

    def test_copy_is_independent(self):
        a = CoverageMap()
        a.record("v", "AC", "R4:nominal")
        b = a.copy()
        b.record("v", "SC", "R1:unsafe")
        assert len(a) == 1 and len(b) == 2

    def test_novelty_and_pairs(self):
        cm = CoverageMap()
        key = ("v", "AC", "R4:nominal")
        assert cm.novelty(key) == 1.0
        cm.record(*key, count=3)
        assert cm.novelty(key) == 0.25
        assert cm.pairs == {key}
        assert cm.new_pairs_against(CoverageMap()) == {key}
        assert CoverageMap().new_pairs_against(cm) == set()

    def test_picklable(self):
        rng = random.Random(11)
        a = _random_map(rng)
        clone = pickle.loads(pickle.dumps(a))
        assert clone.counts == a.counts

    def test_table_renders_counts(self):
        cm = CoverageMap()
        assert "no samples" in cm.table()
        cm.record("toyRover", "SC", "R5:safer", count=4)
        text = cm.table()
        assert "toyRover" in text and "R5:safer" in text and "4" in text

    def test_vehicle_label(self):
        assert vehicle_label("drone2/SafeMotionPrimitive") == "drone2"
        assert vehicle_label("SafeMotionPrimitive") == "SafeMotionPrimitive"


class TestCoverageTracker:
    def test_tracker_records_well_formed_keys(self):
        tester = SystematicTester(
            scenario_factory("toy-closed-loop"),
            RandomStrategy(seed=0, max_executions=5),
            track_coverage=True,
        )
        report = tester.explore()
        assert report.coverage
        for vehicle, mode, region in report.coverage.pairs:
            assert vehicle == "toyRover"
            assert mode in MODES
            assert region in REGIONS

    def test_tracker_never_reports_violations(self):
        instance = build_scenario("toy-closed-loop")
        tracker = CoverageTracker(instance.system)
        assert tracker.result.ok
        assert tracker.flush() == []
        assert tracker.tracks_anything

    def test_windowed_and_per_step_coverage_identical(self):
        reports = {}
        for window in (1, 8):
            tester = SystematicTester(
                scenario_factory("toy-closed-loop"),
                RandomStrategy(seed=3, max_executions=6),
                monitor_window=window,
                track_coverage=True,
            )
            reports[window] = tester.explore()
        assert reports[1].coverage.counts == reports[8].coverage.counts

    def test_coverage_off_by_default_and_costless(self):
        tester = SystematicTester(
            scenario_factory("toy-closed-loop"), RandomStrategy(seed=0, max_executions=3)
        )
        report = tester.explore()
        assert not report.coverage
        assert not tester.track_coverage

    def test_tracking_does_not_change_verdicts(self):
        reports = {}
        for tracked in (False, True):
            tester = SystematicTester(
                scenario_factory("toy-closed-loop", broken_ttf=True),
                RandomStrategy(seed=2, max_executions=8),
                track_coverage=tracked,
            )
            reports[tracked] = tester.explore()
        keyed = [
            [
                (record.steps, tuple(record.trail or ()), len(record.violations))
                for record in report.executions
            ]
            for report in reports.values()
        ]
        assert keyed[0] == keyed[1]

    def test_fresh_and_reused_instances_same_coverage(self):
        reports = {}
        for reuse in (False, True):
            tester = SystematicTester(
                scenario_factory("rare-branch-geofence"),
                RandomStrategy(seed=1, max_executions=6),
                reuse_instances=reuse,
                track_coverage=True,
            )
            reports[reuse] = tester.explore()
        assert reports[True].coverage.counts == reports[False].coverage.counts

    def test_summary_mentions_coverage(self):
        tester = SystematicTester(
            scenario_factory("toy-closed-loop"),
            RandomStrategy(seed=0, max_executions=3),
            track_coverage=True,
        )
        assert "pair(s) covered" in tester.explore().summary()


class TestCoverageGuidedStrategy:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CoverageGuidedStrategy(max_executions=0)
        with pytest.raises(ValueError):
            CoverageGuidedStrategy(epsilon=1.5)

    def test_protocol_surface(self):
        strategy = CoverageGuidedStrategy(seed=0, max_executions=2)
        assert strategy.has_more_executions()
        assert strategy.execution_started()
        assert not strategy.is_exhausted
        assert strategy.execution_started()
        assert not strategy.has_more_executions()

    def test_deterministic_in_seed(self):
        def sweep():
            tester = SystematicTester(
                scenario_factory("rare-branch-geofence"),
                CoverageGuidedStrategy(seed=5, max_executions=10),
            )
            report = tester.explore()
            return (
                [tuple(record.trail or ()) for record in report.executions],
                report.coverage.counts,
            )

        assert sweep() == sweep()

    def test_auto_enables_tracking(self):
        tester = SystematicTester(
            scenario_factory("toy-closed-loop"), CoverageGuidedStrategy(max_executions=3)
        )
        assert tester.track_coverage
        assert tester.explore().coverage

    def test_trail_replays_bit_identically(self):
        tester = SystematicTester(
            scenario_factory("deep-menu-surveillance", include_unsafe_position=True),
            CoverageGuidedStrategy(seed=0, max_executions=60),
        )
        report = tester.explore(stop_at_first_violation=True)
        counterexample = report.first_counterexample()
        assert counterexample is not None
        replayed = tester.replay(counterexample.trail, counterexample.index)
        assert replayed.steps == counterexample.steps
        assert replayed.trail == counterexample.trail
        assert [
            (violation.time, violation.monitor, violation.message)
            for violation in replayed.violations
        ] == [
            (violation.time, violation.monitor, violation.message)
            for violation in counterexample.violations
        ]

    def test_covers_the_hostile_scenario(self):
        # Both modules (motion primitive + battery) and both modes must be
        # reached within a menu-sweep-sized budget; uniform random has a
        # coupon-collector tail here (see bench_coverage_guided.py).
        tester = SystematicTester(
            scenario_factory("deep-menu-surveillance"),
            CoverageGuidedStrategy(seed=0, max_executions=48),
        )
        report = tester.explore()
        pairs = report.coverage.pairs
        vehicles = {vehicle for vehicle, _, _ in pairs}
        assert vehicles == {"SafeMotionPrimitive", "BatterySafety"}
        assert {mode for _, mode, _ in pairs} == set(MODES)
        assert len(pairs) == 12

    @pytest.mark.parametrize(
        "strategy_factory,tracking",
        [
            (lambda: CoverageGuidedStrategy(seed=1, max_executions=4), None),
            (lambda: RandomStrategy(seed=1, max_executions=4), True),
        ],
        ids=["auto-tracking", "explicit-tracking"],
    )
    def test_replay_does_not_pollute_cumulative_coverage(self, strategy_factory, tracking):
        # The published report.coverage is the tester's own map; a later
        # replay must not double-count samples into it, whether tracking
        # was strategy-driven or explicitly requested.
        tester = SystematicTester(
            scenario_factory("toy-closed-loop"),
            strategy_factory(),
            track_coverage=tracking,
        )
        report = tester.explore()
        before = report.coverage.total_samples
        assert before > 0
        tester.replay(report.executions[0].trail or [])
        assert tester.coverage.total_samples == before
        assert report.coverage.total_samples == before
        assert tester.track_coverage if tracking else True  # option restored


class TestParallelCoverage:
    def test_parallel_random_coverage_equals_serial(self):
        serial = SystematicTester(
            scenario_factory("toy-closed-loop", broken_ttf=True),
            RandomStrategy(seed=4, max_executions=10),
            track_coverage=True,
        ).explore()
        parallel = ParallelTester(
            "toy-closed-loop",
            scenario_overrides={"broken_ttf": True},
            strategy=RandomStrategy(seed=4, max_executions=10),
            workers=3,
            track_coverage=True,
        ).explore()
        assert parallel.coverage.counts == serial.coverage.counts

    def test_parallel_exhaustive_merges_worker_maps(self):
        from repro.testing import ExhaustiveStrategy

        report = ParallelTester(
            "toy-closed-loop",
            strategy=ExhaustiveStrategy(max_depth=3, max_executions=30),
            workers=2,
            track_coverage=True,
        ).explore()
        assert report.coverage
        assert {vehicle for vehicle, _, _ in report.coverage.pairs} == {"toyRover"}

    def test_parallel_coverage_off_by_default(self):
        report = ParallelTester(
            "toy-closed-loop",
            strategy=RandomStrategy(seed=0, max_executions=4),
            workers=2,
        ).explore()
        assert not report.coverage
