"""The RTA resilience harness: the SOTER guarantee as a regression gate.

This file doubles as the CI fault-resilience smoke job: it runs the full
protected/unprotected differential on the registered fault scenario and
pins the harness's own soundness checks (truncation and vacuity are
errors, not passes).
"""

import pytest

from repro.testing import (
    ResilienceError,
    ResilienceReport,
    assert_rta_resilient,
    scenario_factory,
)

PROTECTED = scenario_factory("fault-injected-planner", protected=True)
UNPROTECTED = scenario_factory("fault-injected-planner", protected=False)


class TestResilienceDifferential:
    def test_protected_stack_survives_the_exhaustive_fault_sweep(self):
        report = assert_rta_resilient(PROTECTED, max_executions=256)
        assert isinstance(report, ResilienceReport)
        assert report.protected.ok
        assert report.protected.execution_count == 9
        assert report.unprotected is None

    def test_full_differential_finds_a_replay_confirmed_counterexample(self):
        report = assert_rta_resilient(PROTECTED, UNPROTECTED, max_executions=256)
        assert report.protected.ok
        assert report.unprotected is not None
        assert len(report.unprotected.failing) >= 1
        assert report.counterexample is not None
        assert report.confirmed
        summary = report.summary()
        assert "replay-confirmed" in summary
        assert "0 violation(s)" in summary

    def test_unprotected_stack_alone_fails_the_guarantee(self):
        with pytest.raises(ResilienceError, match="violated its monitors"):
            assert_rta_resilient(UNPROTECTED, max_executions=256)


class TestHarnessSoundness:
    def test_truncated_sweep_is_an_error_not_a_pass(self):
        # Budget below the 9-execution fault space: the sweep proves nothing.
        with pytest.raises(ResilienceError, match="did not exhaust"):
            assert_rta_resilient(PROTECTED, max_executions=4)

    def test_vacuous_fault_plan_is_an_error(self):
        # A "twin" that also survives every fault: the differential has no
        # teeth and must say so rather than report success.
        with pytest.raises(ResilienceError, match="vacuous"):
            assert_rta_resilient(PROTECTED, PROTECTED, max_executions=256)
