"""Fault choice points ride the exploration stack end to end.

The tentpole claim: a :class:`~repro.runtime.faults.FaultPlan` lifts fault
timing and kind into the choice trail, so the existing testers — serial,
exhaustive, parallel, population, coverage-guided — enumerate, replay and
compact fault executions with no fault-specific code of their own.  These
tests pin the fault-space size, bit-identical replay, the coverage plane's
fault axis, and byte-equal parallel/population parity on the registered
fault scenarios.
"""

import pytest

from repro.testing import (
    ExhaustiveStrategy,
    ParallelTester,
    PopulationTester,
    RandomStrategy,
    SystematicTester,
    scenario_factory,
)

PLANNER = "fault-injected-planner"
SURVEILLANCE = "fault-injected-surveillance"


def _record_key(record):
    return (
        record.index,
        record.steps,
        tuple(record.trail or ()),
        tuple((v.time, v.monitor, v.message) for v in record.violations),
    )


def _report_keys(report):
    return [_record_key(record) for record in report.executions]


class TestExhaustiveFaultSweep:
    def test_fault_space_size_is_the_product_of_window_menus(self):
        # Two windows x (no-fault | substitute | crash) = 3 * 3 = 9.
        factory = scenario_factory(PLANNER, protected=True)
        strategy = ExhaustiveStrategy(max_depth=64, max_executions=256)
        report = SystematicTester(factory, strategy, max_permuted=1).explore()
        assert report.execution_count == 9
        assert report.ok  # the SOTER guarantee: protected stack never violates

    def test_unprotected_twin_violates_and_replays_bit_identically(self):
        factory = scenario_factory(PLANNER, protected=False)
        strategy = ExhaustiveStrategy(max_depth=64, max_executions=256)
        tester = SystematicTester(factory, strategy, max_permuted=1)
        report = tester.explore()
        assert report.execution_count == 9
        assert not report.ok
        for record in report.failing:
            replayed = tester.replay(list(record.trail or ()))
            assert tuple(replayed.trail or ()) == tuple(record.trail or ())
            assert [(v.time, v.monitor, v.message) for v in replayed.violations] == [
                (v.time, v.monitor, v.message) for v in record.violations
            ]

    def test_trail_labels_name_the_fault_choice_points(self):
        factory = scenario_factory(PLANNER, protected=True)

        class LabelSpy(ExhaustiveStrategy):
            labels = []

            def choose(self, options, label=None):
                if label:
                    self.labels.append(label)
                return super().choose(options, label=label)

        strategy = LabelSpy(max_depth=64, max_executions=4)
        SystematicTester(factory, strategy, max_permuted=1).explore()
        site_labels = {l for l in strategy.labels if l.startswith("fault:")}
        assert site_labels == {
            "fault:node:SafeMotionPlanner.ac.faultable:w0",
            "fault:node:SafeMotionPlanner.ac.faultable:w1",
        }


class TestCoverageFaultAxis:
    def test_random_sweep_covers_fault_kinds_per_window(self):
        factory = scenario_factory(SURVEILLANCE)
        tester = SystematicTester(
            factory,
            RandomStrategy(seed=2, max_executions=24),
            max_permuted=1,
            track_coverage=True,
        )
        report = tester.explore()
        assert report.ok  # safe by construction
        fault_keys = {k for k in tester.coverage.counts if k[0].startswith("fault:")}
        # Node site: (ok|invert|stuck|crash) x 2 windows; topic site:
        # (ok|drop|stuck|delay) x 1 window.
        node_keys = {k for k in fault_keys if "SafeMotionPrimitive" in k[0]}
        topic_keys = {k for k in fault_keys if k[0] == "fault:topic:localPosition"}
        assert {k[1] for k in node_keys} == {"ok", "invert", "stuck", "crash"}
        assert {k[2] for k in node_keys} == {"w0", "w1"}
        assert {k[1] for k in topic_keys} == {"ok", "drop", "stuck", "delay"}
        # The usual mode/region plane is still there alongside the fault axis.
        assert any(not k[0].startswith("fault:") for k in tester.coverage.counts)


class TestParallelAndPopulationParity:
    def test_parallel_exhaustive_matches_serial_byte_for_byte(self):
        serial = SystematicTester(
            scenario_factory(PLANNER, protected=False),
            ExhaustiveStrategy(max_depth=64, max_executions=256),
            max_permuted=1,
        )
        serial_report = serial.explore()
        parallel = ParallelTester(
            PLANNER,
            scenario_overrides={"protected": False},
            strategy=ExhaustiveStrategy(max_depth=64, max_executions=256),
            workers=2,
            max_permuted=1,
        )
        parallel_report = parallel.explore()
        assert sorted(_report_keys(parallel_report)) == sorted(_report_keys(serial_report))
        assert parallel_report.all_confirmed

    def test_population_compaction_matches_serial_byte_for_byte(self):
        factory = scenario_factory(SURVEILLANCE)
        serial = SystematicTester(
            factory, RandomStrategy(seed=5, max_executions=40), max_permuted=1
        )
        population = PopulationTester(
            factory,
            RandomStrategy(seed=5, max_executions=40),
            population_size=16,
            max_permuted=1,
        )
        serial_report = serial.explore()
        population_report = population.explore()
        assert _report_keys(population_report) == _report_keys(serial_report)
        # The trie actually compacted shared fault prefixes.
        assert population.stats.executions == 40

    def test_explicit_fault_plan_override_reaches_the_scenario(self):
        from repro.runtime import FaultPlan, FaultSite

        site = FaultSite(
            kinds=("crash",),
            windows=((0.25, 0.75),),
            node="motionPlanner.faultable",
        )
        factory = scenario_factory(
            PLANNER, protected=False, fault_plan=FaultPlan(sites=(site,)).encode()
        )
        strategy = ExhaustiveStrategy(max_depth=64, max_executions=64)
        report = SystematicTester(factory, strategy, max_permuted=1).explore()
        assert report.execution_count == 2  # one window, (no-fault | crash)
