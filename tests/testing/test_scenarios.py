"""Tests for the scenario registry and the registered scenarios."""

import pickle

import pytest

from repro.testing import (
    ModelInstance,
    RandomStrategy,
    SystematicTester,
    build_scenario,
    register_scenario,
    registered_scenarios,
    scenario,
    scenario_factory,
)

EXPECTED_SCENARIOS = {
    "toy-closed-loop",
    "drone-surveillance",
    "battery-safety-abort",
    "faulty-planner",
    "multi-obstacle-geofence",
    "multi-drone-surveillance",
    "multi-drone-crossing",
}


class TestRegistry:
    def test_all_expected_scenarios_are_registered(self):
        assert EXPECTED_SCENARIOS <= set(registered_scenarios())

    def test_every_registered_name_round_trips(self):
        for name in registered_scenarios():
            entry = scenario(name)
            assert entry.name == name
            assert entry.description
            instance = build_scenario(name)
            assert isinstance(instance, ModelInstance)
            assert instance.system is not None
            assert instance.monitors.monitors

    def test_unknown_scenario_raises_with_known_names(self):
        with pytest.raises(KeyError, match="toy-closed-loop"):
            scenario("no-such-scenario")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scenario("toy-closed-loop")(lambda: None)

    def test_factory_is_picklable_and_rebuilds(self):
        factory = scenario_factory("toy-closed-loop", broken_ttf=True)
        clone = pickle.loads(pickle.dumps(factory))
        instance = clone()
        assert isinstance(instance, ModelInstance)
        # Two calls build independent instances (fresh monitors).
        assert clone() is not clone()

    def test_factory_rejects_unknown_name_eagerly(self):
        with pytest.raises(KeyError):
            scenario_factory("no-such-scenario")


class TestRegisteredScenarioBehaviour:
    def _explore(self, name, stop_early=False, **overrides):
        tester = SystematicTester(
            scenario_factory(name, **overrides),
            strategy=RandomStrategy(seed=0, max_executions=8),
        )
        return tester.explore(stop_at_first_violation=stop_early)

    def test_toy_closed_loop_safe_and_broken(self):
        assert self._explore("toy-closed-loop").ok
        assert not self._explore("toy-closed-loop", stop_early=True, broken_ttf=True).ok

    def test_drone_surveillance_safe_and_unsafe(self):
        assert self._explore("drone-surveillance").ok
        report = self._explore(
            "drone-surveillance", stop_early=True, include_unsafe_position=True
        )
        assert not report.ok
        assert any("phi_obs" in v.monitor for r in report.failing for v in r.violations)

    def test_battery_abort_safe_and_critical(self):
        assert self._explore("battery-safety-abort").ok
        report = self._explore("battery-safety-abort", stop_early=True, include_critical=True)
        assert not report.ok
        assert any(v.monitor == "phi_bat" for r in report.failing for v in r.violations)

    def test_faulty_planner_finds_phi_plan_violation(self):
        report = self._explore("faulty-planner", stop_early=True)
        assert not report.ok
        assert any(v.monitor == "phi_plan" for r in report.failing for v in r.violations)

    def test_geofence_safe_and_breached(self):
        assert self._explore("multi-obstacle-geofence").ok
        report = self._explore("multi-obstacle-geofence", stop_early=True, include_breach=True)
        assert not report.ok

    def test_scenario_counterexamples_replay_deterministically(self):
        factory = scenario_factory("faulty-planner")
        tester = SystematicTester(factory, strategy=RandomStrategy(seed=0, max_executions=8))
        report = tester.explore(stop_at_first_violation=True)
        counterexample = report.first_counterexample()
        assert counterexample is not None
        replayed = tester.replay(counterexample.trail, counterexample.index)
        assert [(v.monitor, v.time) for v in replayed.violations] == [
            (v.monitor, v.time) for v in counterexample.violations
        ]
