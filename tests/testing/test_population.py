"""Population-vs-serial equivalence: the lock-step execution plane changes nothing.

:class:`~repro.testing.population.PopulationTester` runs whole populations
of a scenario through one reused instance, compacting duplicate trails and
(optionally) resuming live runs from shared-prefix snapshots.  All of that
is pure mechanics: the report it produces must be *observably identical* to
the serial :class:`~repro.testing.explorer.SystematicTester` — byte-equal
trails, step counts, violation sequences, and coverage — on every
registered scenario, for random and exhaustive strategies, with sharing on
and off.  These tests are the proof the ≥5x speedup claim rides on.
"""

import pytest

from repro.testing import (
    ExhaustiveStrategy,
    ParallelTester,
    PopulationTester,
    RandomStrategy,
    SystematicTester,
    scenario_factory,
)

#: Every registered scenario, with overrides that make violations likely so
#: the equivalence claim covers non-empty violation sequences too (same
#: roster as the reset-reuse differential suite).
SCENARIOS = [
    ("toy-closed-loop", {"broken_ttf": True}),
    ("drone-surveillance", {"include_unsafe_position": True}),
    ("battery-safety-abort", {"include_critical": True}),
    ("faulty-planner", {}),
    ("multi-obstacle-geofence", {"include_breach": True}),
    ("multi-drone-surveillance", {"drones": 2, "include_conflict": True}),
    ("multi-drone-crossing", {}),
    ("rare-branch-geofence", {"include_breach": True}),
    ("deep-menu-surveillance", {"include_unsafe_position": True}),
    ("fault-injected-planner", {"protected": False}),
    ("fault-injected-surveillance", {}),
    # Plant-in-the-loop: the population side additionally runs the
    # row-group matrix plant, so these rows double as the vectorized
    # live-row equivalence proof.
    ("plant-surveillance", {"unsafe_start": True}),
    ("plant-surveillance", {"unsafe_start": True, "drones": 2}),
]


def _record_key(record):
    return (
        record.index,
        record.steps,
        tuple(record.trail or ()),
        tuple(
            (violation.time, violation.monitor, violation.message, type(violation.state).__name__)
            for violation in record.violations
        ),
    )


def _report_keys(report):
    return [_record_key(record) for record in report.executions]


class TestPopulationVsSerialEquivalence:
    @pytest.mark.parametrize("share", [True, False], ids=["shared", "compact-only"])
    @pytest.mark.parametrize(
        "name,overrides",
        SCENARIOS,
        ids=[f"{s[0]}-{s[1]['drones']}d" if "drones" in s[1] else s[0] for s in SCENARIOS],
    )
    def test_random_sweep_identical(self, name, overrides, share):
        factory = scenario_factory(name, **overrides)
        serial = SystematicTester(
            factory, RandomStrategy(seed=3, max_executions=14), reuse_instances=True
        )
        population = PopulationTester(
            factory,
            RandomStrategy(seed=3, max_executions=14),
            share_prefixes=share,
            # Eager snapshotting: exercise capture/restore even on short sweeps.
            snapshot_after=1,
            snapshot_min_steps=1,
        )
        serial_report = serial.explore()
        population_report = population.explore()
        assert _report_keys(population_report) == _report_keys(serial_report)
        assert population.coverage.counts == serial.coverage.counts
        assert population.stats.executions == 14
        # fault-injected-surveillance is safe by construction; the toy
        # scenario only violates under broken_ttf-specific trails.
        if name not in ("toy-closed-loop", "fault-injected-surveillance"):
            assert not population_report.ok

    @pytest.mark.parametrize("share", [True, False], ids=["shared", "compact-only"])
    @pytest.mark.parametrize(
        "name,overrides",
        SCENARIOS,
        ids=[f"{s[0]}-{s[1]['drones']}d" if "drones" in s[1] else s[0] for s in SCENARIOS],
    )
    def test_exhaustive_enumeration_identical(self, name, overrides, share):
        factory = scenario_factory(name, **overrides)
        serial = SystematicTester(
            factory,
            ExhaustiveStrategy(max_depth=4, max_executions=20),
            reuse_instances=True,
        )
        population = PopulationTester(
            factory,
            ExhaustiveStrategy(max_depth=4, max_executions=20),
            share_prefixes=share,
            snapshot_after=1,
            snapshot_min_steps=1,
        )
        assert _report_keys(population.explore()) == _report_keys(serial.explore())
        assert population.coverage.counts == serial.coverage.counts

    def test_duplicate_trails_are_compacted_not_rerun(self):
        # A short-horizon surveillance sweep with no schedule permutation
        # has a small trail space, so a random sweep repeats trails; every
        # repeat must be answered from the trie without running the engine.
        population = PopulationTester(
            scenario_factory("drone-surveillance", horizon=1.0),
            RandomStrategy(seed=0, max_executions=200),
            max_permuted=1,
        )
        report = population.explore()
        stats = population.stats
        assert stats.executions == 200
        assert stats.compacted > 0
        assert stats.live_runs + stats.compacted == stats.executions
        assert stats.compaction_rate == stats.compacted / 200
        # Compacted rows still materialise full records.
        assert len(report.executions) == 200
        assert all(record.trail is not None for record in report.executions)

    def test_shared_prefixes_restore_snapshots(self):
        population = PopulationTester(
            scenario_factory("drone-surveillance", include_unsafe_position=True),
            RandomStrategy(seed=7, max_executions=40),
            max_permuted=1,
            snapshot_after=1,
            snapshot_min_steps=1,
        )
        population.explore()
        stats = population.stats
        assert stats.snapshots_taken > 0
        assert stats.restores > 0
        assert stats.snapshots_retained <= population.population_size

    def test_replay_matches_serial_replay(self):
        factory = scenario_factory("drone-surveillance", include_unsafe_position=True)
        serial = SystematicTester(
            factory, RandomStrategy(seed=5, max_executions=20), reuse_instances=True
        )
        population = PopulationTester(
            factory, RandomStrategy(seed=5, max_executions=20)
        )
        serial_report = serial.explore()
        population.explore()
        counterexample = serial_report.first_counterexample()
        assert counterexample is not None
        replayed = population.replay(counterexample.trail, index=counterexample.index)
        assert _record_key(replayed) == _record_key(counterexample)
        # The exploration strategy survives the replay untouched.
        assert isinstance(population.strategy, RandomStrategy)

    def test_run_single_matches_serial(self):
        factory = scenario_factory("toy-closed-loop", broken_ttf=True)
        serial = SystematicTester(
            factory, RandomStrategy(seed=2, max_executions=5), reuse_instances=True
        )
        population = PopulationTester(factory, RandomStrategy(seed=2, max_executions=5))
        for index in range(5):
            assert _record_key(population.run_single(index)) == _record_key(
                serial.run_single(index)
            )


class _Unpicklable:
    """Deep-copyable but pickle-resistant payload (e.g. a C handle)."""

    def __init__(self):
        self.ticks = 0

    def __reduce__(self):
        import pickle

        raise pickle.PicklingError("opaque native handle")

    def __deepcopy__(self, memo):
        clone = _Unpicklable()
        clone.ticks = self.ticks
        return clone


class TestSnapshotFallback:
    """Pin the snapshot robustness ladder: delta → pickle → deep copies.

    A model whose node state holds a pickle-resistant (but deep-copyable)
    object must still be swept correctly: the whole-state path flips from
    pickling to held deep copies on the first failure, records the flip in
    ``PopulationStats.pickle_fallbacks``, and the resulting report stays
    byte-equal to the serial sweep.
    """

    @staticmethod
    def _factory():
        from repro.testing import build_scenario

        instance = build_scenario("toy-closed-loop", broken_ttf=True)
        # Plant the opaque object inside a node the snapshots must carry.
        instance.system.modules[0].decision.opaque_handle = _Unpicklable()
        return instance

    def _sweep(self, **kwargs):
        factory = self._factory
        serial = SystematicTester(
            factory, RandomStrategy(seed=4, max_executions=40), reuse_instances=True
        )
        population = PopulationTester(
            factory,
            RandomStrategy(seed=4, max_executions=40),
            snapshot_after=1,
            snapshot_min_steps=1,
            **kwargs,
        )
        serial_report = serial.explore()
        population_report = population.explore()
        assert _report_keys(population_report) == _report_keys(serial_report)
        assert population.coverage.counts == serial.coverage.counts
        return population

    def test_whole_state_path_falls_back_to_deep_copies(self):
        population = self._sweep(use_delta_snapshots=False)
        stats = population.stats
        assert stats.pickle_fallbacks >= 1
        assert stats.snapshots_taken > 0
        assert stats.restores > 0
        assert stats.delta_snapshots == 0

    def test_delta_path_shrugs_off_unpicklable_state(self):
        # Delta capture never pickles, so the opaque object costs nothing.
        population = self._sweep(use_delta_snapshots=True)
        assert population.stats.pickle_fallbacks == 0
        assert population.stats.delta_restores > 0


class TestPopulationValidation:
    def test_requires_reuse_instances(self):
        with pytest.raises(ValueError, match="reuse_instances"):
            PopulationTester(
                scenario_factory("toy-closed-loop"), reuse_instances=False
            )

    def test_population_size_must_be_positive(self):
        with pytest.raises(ValueError, match="population_size"):
            PopulationTester(scenario_factory("toy-closed-loop"), population_size=0)

    def test_snapshot_after_must_be_positive(self):
        with pytest.raises(ValueError, match="snapshot_after"):
            PopulationTester(scenario_factory("toy-closed-loop"), snapshot_after=0)


class TestParallelPopulationEquivalence:
    def test_parallel_requires_reuse_instances(self):
        with pytest.raises(ValueError, match="reuse_instances"):
            ParallelTester(
                scenario="toy-closed-loop",
                workers=2,
                reuse_instances=False,
                population_size=16,
            )

    def test_parallel_random_matches_serial_shards(self):
        strategy = lambda: RandomStrategy(seed=9, max_executions=12)
        plain = ParallelTester(
            scenario="multi-obstacle-geofence",
            scenario_overrides={"include_breach": True},
            strategy=strategy(),
            workers=2,
        ).explore()
        population = ParallelTester(
            scenario="multi-obstacle-geofence",
            scenario_overrides={"include_breach": True},
            strategy=strategy(),
            workers=2,
            population_size=64,
        ).explore()
        assert _report_keys(population) == _report_keys(plain)
        assert population.all_confirmed

    def test_parallel_exhaustive_matches_serial_shards(self):
        strategy = lambda: ExhaustiveStrategy(max_depth=3, max_executions=40)
        plain = ParallelTester(
            scenario="toy-closed-loop",
            scenario_overrides={"broken_ttf": True},
            strategy=strategy(),
            workers=2,
        ).explore()
        population = ParallelTester(
            scenario="toy-closed-loop",
            scenario_overrides={"broken_ttf": True},
            strategy=strategy(),
            workers=2,
            population_size=32,
        ).explore()
        assert _report_keys(population) == _report_keys(plain)
