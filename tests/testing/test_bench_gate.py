"""Unit tests for the benchmark regression gate in benchmarks/conftest.py."""

import importlib.util
import json
import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"


@pytest.fixture
def gate(tmp_path, monkeypatch):
    spec = importlib.util.spec_from_file_location("bench_conftest", _BENCH_DIR / "conftest.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    monkeypatch.setattr(module, "REFERENCE_PATH", tmp_path / "benchmark_reference.json")
    monkeypatch.delenv("BENCH_UPDATE_REFERENCE", raising=False)
    return module


class TestBenchmarkGate:
    def test_first_measurement_becomes_reference(self, gate):
        gate.gate_benchmark("suite/case", 0.5)
        stored = json.loads(gate.REFERENCE_PATH.read_text())
        assert stored == {"suite/case": 0.5}

    def test_within_budget_passes(self, gate):
        gate.gate_benchmark("suite/case", 0.5)
        gate.gate_benchmark("suite/case", 0.9)  # < 2x: fine
        assert json.loads(gate.REFERENCE_PATH.read_text()) == {"suite/case": 0.5}

    def test_regression_fails_the_run(self, gate):
        gate.gate_benchmark("suite/case", 0.5)
        with pytest.raises(pytest.fail.Exception, match="regressed"):
            gate.gate_benchmark("suite/case", 1.1)  # > 2x slowdown

    def test_update_env_rewrites_reference(self, gate, monkeypatch):
        gate.gate_benchmark("suite/case", 0.5)
        monkeypatch.setenv("BENCH_UPDATE_REFERENCE", "1")
        gate.gate_benchmark("suite/case", 1.4)
        assert json.loads(gate.REFERENCE_PATH.read_text()) == {"suite/case": 1.4}

    def test_repo_reference_file_exists_and_is_valid(self):
        reference = _BENCH_DIR.parent / "benchmark_reference.json"
        assert reference.exists(), "the committed reference numbers must ship with the repo"
        stored = json.loads(reference.read_text())
        assert stored and all(isinstance(v, float) for v in stored.values())
