"""Shared fixtures for the SOTER reproduction test suite."""

from __future__ import annotations

import pytest

from repro.dynamics import (
    BatteryModel,
    BatteryParams,
    BoundedDoubleIntegrator,
    DoubleIntegratorParams,
    DroneState,
)
from repro.geometry import AABB, Vec3, Workspace, empty_workspace
from repro.simulation import surveillance_city, waypoint_range


@pytest.fixture
def drone_model() -> BoundedDoubleIntegrator:
    """The default case-study drone model."""
    return BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))


@pytest.fixture
def open_workspace() -> Workspace:
    """A 20 m obstacle-free box."""
    return empty_workspace(side=20.0, ceiling=10.0)


@pytest.fixture
def boxed_workspace() -> Workspace:
    """A 20 m box with one central pillar obstacle."""
    workspace = empty_workspace(side=20.0, ceiling=10.0, name="boxed")
    workspace.add_obstacle(AABB.from_footprint(9.0, 9.0, 2.0, 2.0, 8.0))
    return workspace


@pytest.fixture
def hover_state() -> DroneState:
    """A drone hovering at 2 m altitude near the workspace corner."""
    return DroneState(position=Vec3(3.0, 3.0, 2.0))


@pytest.fixture
def battery_model() -> BatteryModel:
    """A battery model with the default (slow-drain) parameters."""
    return BatteryModel(BatteryParams())


@pytest.fixture(scope="session")
def city_world():
    """The surveillance city of the case study (session-scoped: it is static)."""
    return surveillance_city()


@pytest.fixture(scope="session")
def range_world():
    """The g1..g4 waypoint range of Figure 5 / 12a."""
    return waypoint_range()
