"""Executor re-entrancy: a second run() must not inherit the first run's state.

Regression pin for the service work: both executors used to reuse
``self.monitors`` across calls without resetting it, so a second ``run()``
started with the first run's recorded violations (and, after an aborted
batched run, its pending captured samples).  One long-running service
process re-running missions on a warm executor would double-count every
verdict.
"""

import pytest

from repro.core import ConstantNode, Program, SafetySpec, SoterCompiler, Topic
from repro.core.monitor import MonitorSuite, TopicSafetyMonitor
from repro.runtime import SimulatedTimeExecutor, WallClockExecutor


def _bad_tick_system(period=0.05):
    node = ConstantNode("ticker", {"ticks": -1}, period=period)
    program = Program(name="count", topics=[Topic("ticks", int, None)], nodes=[node])
    return SoterCompiler().compile(program).system


def _suite():
    return MonitorSuite(
        [TopicSafetyMonitor("positive", "ticks", SafetySpec("pos", lambda x: x > 0))]
    )


def _keys(violations):
    return [(v.time, v.monitor, v.message) for v in violations]


class TestSimulatedTimeReentrancy:
    def test_second_run_reports_independent_violations(self):
        monitors = _suite()
        executor = SimulatedTimeExecutor(
            _bad_tick_system(), monitors=monitors, monitor_period=0.1
        )
        executor.run(0.5)
        first = _keys(monitors.violations)
        assert first  # the spec must actually fire
        executor.run(0.5)
        second = _keys(monitors.violations)
        # Identical runs, identical verdicts — NOT first + first again.
        assert second == first

    def test_matches_a_fresh_executor(self):
        warm = SimulatedTimeExecutor(
            _bad_tick_system(), monitors=_suite(), monitor_period=0.1
        )
        warm.run(0.5)
        warm_result = warm.run(0.5)
        fresh = SimulatedTimeExecutor(
            _bad_tick_system(), monitors=_suite(), monitor_period=0.1
        )
        fresh_result = fresh.run(0.5)
        assert _keys(warm_result.monitors.violations) == _keys(
            fresh_result.monitors.violations
        )

    def test_aborted_batched_run_leaves_no_pending_samples(self):
        # An environment hook that blows up mid-run strands captured-but-
        # unflushed samples on the suite; the next run must start clean.
        monitors = _suite()
        executor = SimulatedTimeExecutor(
            _bad_tick_system(), monitors=monitors, monitor_period=0.05, monitor_batch=64
        )

        def exploding(engine, upcoming):
            if upcoming > 0.2:
                raise RuntimeError("mid-run crash")

        with pytest.raises(RuntimeError):
            executor.run(1.0, environment=exploding)
        assert monitors.pending_samples > 0  # the stranded state the fix clears
        executor.run(1.0)
        clean = SimulatedTimeExecutor(
            _bad_tick_system(), monitors=_suite(), monitor_period=0.05, monitor_batch=64
        )
        clean.run(1.0)
        assert _keys(monitors.violations) == _keys(clean.monitors.violations)


class TestWallClockReentrancy:
    def test_second_run_reports_independent_violations(self):
        monitors = _suite()
        executor = WallClockExecutor(
            _bad_tick_system(), time_scale=100.0, monitors=monitors, monitor_period=0.1
        )
        executor.run(0.5)
        first = _keys(monitors.violations)
        assert first
        executor.run(0.5)
        assert _keys(monitors.violations) == first
