"""Edge cases of the probabilistic :class:`FaultInjector`.

The strategy-driven plane (``test_fault_plan.py``) supersedes this
injector for exploration, but the probabilistic plane stays supported for
Monte-Carlo style robustness runs — these tests pin down its corner
semantics: the DROP→STUCK ``_last_outputs`` interplay, the inclusive
window boundaries, reset determinism, and non-command passthrough.
"""

import pytest

from repro.core import ConstantNode
from repro.dynamics import ControlCommand
from repro.geometry import Vec3
from repro.runtime import FaultInjector, FaultKind, FaultSpec


def _command_node(name="controller"):
    return ConstantNode(
        name, {"cmd": ControlCommand(acceleration=Vec3(1.0, 0.0, 0.0))}, period=0.1
    )


class TestFaultInjectorEdges:
    def test_drop_does_not_refresh_stuck_replay_value(self):
        # A DROP window must not update _last_outputs: when the spec is
        # later switched to STUCK semantics the injector replays the last
        # *delivered* output, not the suppressed one.
        injector = FaultInjector(
            _command_node(),
            FaultSpec(kind=FaultKind.DROP, probability=1.0, start_time=0.5, end_time=1.0),
        )
        delivered = injector.step(0.0, {})
        assert injector.step(0.7, {}) == {}
        assert injector._last_outputs == dict(delivered)

    def test_window_boundaries_are_inclusive(self):
        spec = FaultSpec(kind=FaultKind.DROP, probability=1.0, start_time=1.0, end_time=2.0)
        injector = FaultInjector(_command_node(), spec)
        assert injector.step(1.0, {}) == {}  # start boundary is inside
        assert injector.step(2.0, {}) == {}  # end boundary is inside
        assert injector.step(2.0 + 1e-9, {}) != {}

    def test_degenerate_window_start_equals_now_equals_end(self):
        spec = FaultSpec(kind=FaultKind.DROP, probability=1.0, start_time=1.0, end_time=1.0)
        injector = FaultInjector(_command_node(), spec)
        assert injector.step(0.999, {}) != {}
        assert injector.step(1.0, {}) == {}  # the single-instant window fires
        assert injector.step(1.001, {}) != {}

    def test_two_resets_produce_identical_fault_streams(self):
        injector = FaultInjector(
            _command_node(),
            FaultSpec(kind=FaultKind.NOISE, probability=0.5, magnitude=0.4, seed=13),
        )

        def stream():
            injector.reset()
            return [injector.step(t / 10.0, {})["cmd"].acceleration for t in range(20)]

        first, second = stream(), stream()
        assert injector.injected_faults > 0  # the stream actually faulted
        assert all(a.almost_equal(b) for a, b in zip(first, second))

    def test_reset_clears_stuck_memory(self):
        node = _command_node()
        injector = FaultInjector(
            node, FaultSpec(kind=FaultKind.STUCK, probability=1.0, start_time=0.5)
        )
        injector.step(0.0, {})
        injector.step(1.0, {})
        injector.reset()
        assert injector._last_outputs == {}
        assert injector.injected_faults == 0
        # With no pre-fault output recorded, STUCK replays an empty map.
        assert injector.step(1.0, {}) == {}

    def test_non_command_values_pass_through_every_value_fault(self):
        for kind in (FaultKind.BIAS, FaultKind.NOISE, FaultKind.INVERT):
            injector = FaultInjector(
                ConstantNode("n", {"data": 42}, period=0.1),
                FaultSpec(kind=kind, probability=1.0, magnitude=2.0),
            )
            assert injector.step(0.0, {})["data"] == 42
            assert injector.injected_faults == 1  # counted, value untouched
