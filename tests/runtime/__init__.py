"""Test package for the SOTER reproduction."""
