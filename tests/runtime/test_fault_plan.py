"""The strategy-driven fault plane: plans, injectors, the topic gate, the façade.

Covers the contracts the exploration stack relies on:

* :class:`FaultWindow`/:class:`FaultSite`/:class:`FaultPlan` validation and
  the wire round trip (including the list form the swarm's JSON transport
  produces);
* :class:`ChoiceFaultInjector` step semantics per kind — option 0 is
  always "no fault", CRASH is crash-and-*restart* (the inner node is
  ``reset()`` on revival), SUBSTITUTE swaps builder-supplied payloads,
  and the DROP→STUCK ``_last_outputs`` interplay matches the
  probabilistic injector's;
* :class:`TopicFaultGate` admit/advance semantics (DROP blacks out,
  STUCK swallows, DELAY buffers until due);
* :class:`FaultPlane` adoption, strategy binding and reset determinism.
"""

import pytest

from repro.core import ConstantNode, Program, SoterCompiler, Topic
from repro.core.topics import TopicBoard, TopicRegistry
from repro.dynamics import ControlCommand
from repro.geometry import Vec3
from repro.runtime import (
    NODE_FAULT_KINDS,
    TOPIC_FAULT_KINDS,
    ChoiceFaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlane,
    FaultSite,
    FaultWindow,
    TopicFaultGate,
)


class ScriptedStrategy:
    """Replays a fixed list of choices and records the labels it saw."""

    def __init__(self, choices):
        self.choices = list(choices)
        self.labels = []
        self._cursor = 0

    def choose(self, options, label=None):
        self.labels.append(label)
        if self._cursor >= len(self.choices):
            return 0
        value = self.choices[self._cursor]
        self._cursor += 1
        assert 0 <= value < options
        return value


def _command_node():
    return ConstantNode(
        "controller", {"cmd": ControlCommand(acceleration=Vec3(1.0, 0.0, 0.0))}, period=0.1
    )


def _node_site(kinds=("drop", "stuck"), windows=((0.0, 1.0),), **kw):
    return FaultSite(kinds=kinds, windows=windows, node="controller.faultable", **kw)


class TestFaultPlanModel:
    def test_window_is_half_open_and_validated(self):
        window = FaultWindow(0.5, 1.0)
        assert window.contains(0.5)
        assert window.contains(0.999)
        assert not window.contains(1.0)
        assert not window.contains(0.499)
        with pytest.raises(ValueError):
            FaultWindow(1.0, 1.0)

    def test_site_validation(self):
        with pytest.raises(ValueError):  # must target exactly one surface
            FaultSite(kinds=("drop",), windows=((0.0, 1.0),))
        with pytest.raises(ValueError):
            FaultSite(kinds=("drop",), windows=((0.0, 1.0),), node="n", topic="t")
        with pytest.raises(ValueError):  # DELAY is topic-only
            FaultSite(kinds=("delay",), windows=((0.0, 1.0),), node="n")
        with pytest.raises(ValueError):  # CRASH is node-only
            FaultSite(kinds=("crash",), windows=((0.0, 1.0),), topic="t")
        with pytest.raises(ValueError):  # windows must not overlap
            FaultSite(kinds=("drop",), windows=((0.0, 1.0), (0.5, 2.0)), node="n")
        with pytest.raises(ValueError):  # windows must be present
            FaultSite(kinds=("drop",), windows=(), node="n")

    def test_kind_partition_covers_every_kind(self):
        assert NODE_FAULT_KINDS | TOPIC_FAULT_KINDS == frozenset(FaultKind)

    def test_site_options_and_name(self):
        site = _node_site(kinds=("drop", "stuck", "crash"))
        assert site.options() == 4  # option 0 = no fault
        assert site.name == "node:controller.faultable"
        topic_site = FaultSite(kinds=("delay",), windows=((0.0, 1.0),), topic="pos")
        assert topic_site.name == "topic:pos"

    def test_plan_rejects_duplicate_site_names(self):
        site = _node_site()
        with pytest.raises(ValueError):
            FaultPlan(sites=(site, _node_site(kinds=("crash",))))

    def test_wire_round_trip_including_json_list_form(self):
        import json

        plan = FaultPlan(
            sites=(
                _node_site(kinds=("drop", "crash"), windows=((0.0, 0.5), (0.5, 1.5))),
                FaultSite(
                    kinds=("delay",), windows=((0.25, 0.75),), topic="pos", delay=0.1, seed=3
                ),
            )
        )
        encoded = plan.encode()
        assert FaultPlan.decode(encoded) == plan
        assert FaultPlan.coerce(encoded) == plan
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(None) is None
        # The swarm transport turns tuples into JSON lists; decode accepts them.
        listified = json.loads(json.dumps(encoded))
        assert FaultPlan.coerce(listified) == plan
        assert hash(FaultPlan.coerce(listified)) == hash(plan)

    def test_plan_site_partitions(self):
        node_site = _node_site()
        topic_site = FaultSite(kinds=("drop",), windows=((0.0, 1.0),), topic="pos")
        plan = FaultPlan(sites=(node_site, topic_site))
        assert plan.node_sites() == (node_site,)
        assert plan.topic_sites() == (topic_site,)
        assert plan.site_for_node("controller.faultable") is node_site
        assert plan.site_for_node("missing") is None


class TestChoiceFaultInjector:
    def test_option_zero_is_no_fault_and_unbound_degrades_fault_free(self):
        injector = ChoiceFaultInjector(_command_node(), _node_site())
        out = injector.step(0.0, {})  # no strategy bound: degrades to option 0
        assert out["cmd"].acceleration.x == pytest.approx(1.0)
        assert injector.injected_faults == 0

        injector.reset()
        injector.bind_strategy(ScriptedStrategy([0]))
        assert injector.step(0.0, {})["cmd"].acceleration.x == pytest.approx(1.0)
        assert injector.injected_faults == 0

    def test_choice_labels_are_per_window_and_drawn_once(self):
        site = _node_site(windows=((0.0, 0.5), (0.5, 1.0)))
        injector = ChoiceFaultInjector(_command_node(), site)
        strategy = ScriptedStrategy([1, 2])
        injector.bind_strategy(strategy)
        assert injector.step(0.0, {}) == {}  # DROP in window 0
        assert injector.step(0.1, {}) == {}  # cached: no new draw
        injector.step(0.5, {})  # STUCK in window 1
        assert strategy.labels == [
            "fault:node:controller.faultable:w0",
            "fault:node:controller.faultable:w1",
        ]

    def test_drop_then_stuck_interplay(self):
        # DROP must not refresh _last_outputs, so a later STUCK window
        # replays the last *delivered* output — same contract as the
        # probabilistic FaultInjector.
        site = _node_site(windows=((0.5, 1.0), (1.0, 1.5)))
        injector = ChoiceFaultInjector(_command_node(), site)
        injector.bind_strategy(ScriptedStrategy([1, 2]))  # w0 DROP, w1 STUCK
        healthy = injector.step(0.0, {})
        assert injector.step(0.5, {}) == {}
        assert injector.step(1.0, {}) == healthy

    def test_crash_is_crash_and_restart(self):
        class CountingNode(ConstantNode):
            def __init__(self):
                super().__init__("counter", {"ticks": 0}, period=0.1)
                self.steps = 0
                self.resets = 0

            def step(self, now, inputs):
                self.steps += 1
                return {"ticks": self.steps}

            def reset(self):
                self.resets += 1
                self.steps = 0

        inner = CountingNode()
        site = FaultSite(kinds=("crash",), windows=((0.2, 0.4),), node="counter.faultable")
        injector = ChoiceFaultInjector(inner, site)
        injector.bind_strategy(ScriptedStrategy([1]))
        assert injector.step(0.0, {})["ticks"] == 1
        assert injector.step(0.1, {})["ticks"] == 2
        assert injector.step(0.2, {}) == {}  # crashed: inner not stepped
        assert injector.step(0.3, {}) == {}
        assert inner.steps == 2
        revived = injector.step(0.4, {})  # restart: inner reset, then stepped
        assert inner.resets == 1
        assert revived["ticks"] == 1  # boot state, not a resume

    def test_substitute_swaps_payload_and_requires_mapping(self):
        site = FaultSite(
            kinds=("substitute",), windows=((0.0, 1.0),), node="controller.faultable"
        )
        with pytest.raises(ValueError):
            ChoiceFaultInjector(_command_node(), site)
        bad = ControlCommand(acceleration=Vec3(9.0, 9.0, 0.0))
        injector = ChoiceFaultInjector(_command_node(), site, substitutes={"cmd": bad})
        injector.bind_strategy(ScriptedStrategy([1]))
        assert injector.step(0.0, {})["cmd"] is bad

    def test_rejects_topic_site(self):
        with pytest.raises(ValueError):
            ChoiceFaultInjector(
                _command_node(),
                FaultSite(kinds=("drop",), windows=((0.0, 1.0),), topic="cmd"),
            )

    def test_reset_restores_bit_identical_noise_stream(self):
        site = FaultSite(
            kinds=("noise",), windows=((0.0, 1.0),), node="controller.faultable", seed=11
        )
        injector = ChoiceFaultInjector(_command_node(), site)

        def run():
            injector.reset()
            injector.bind_strategy(ScriptedStrategy([1]))
            return [injector.step(t / 10.0, {})["cmd"].acceleration for t in range(5)]

        first, second = run(), run()
        assert all(a.almost_equal(b) for a, b in zip(first, second))


class TestTopicFaultGate:
    def _board(self):
        registry = TopicRegistry()
        registry.declare(Topic("pos", int, 0))
        registry.declare(Topic("other", int, 0))
        return TopicBoard(registry=registry)

    def _gate(self, kinds, board, delay=0.2, choices=(1,)):
        site = FaultSite(kinds=kinds, windows=((0.5, 1.5),), topic="pos", delay=delay)
        gate = TopicFaultGate([site])
        gate.bind_strategy(ScriptedStrategy(choices))
        gate.install(board)
        return gate

    def test_requires_topic_sites(self):
        with pytest.raises(ValueError):
            TopicFaultGate([_node_site()])

    def test_ungated_topics_and_inactive_windows_pass_through(self):
        board = self._board()
        gate = self._gate(("drop",), board)
        gate.advance(0.0)  # before the window
        board.publish("pos", 7)
        board.publish("other", 8)
        assert board.read("pos") == 7
        assert board.read("other") == 8
        assert gate.injected_faults == 0

    def test_drop_blacks_out_the_reading(self):
        board = self._board()
        gate = self._gate(("drop",), board)
        board.publish("pos", 7)
        gate.advance(0.5)
        board.publish("pos", 9)
        assert board.read("pos") is None
        assert gate.injected_faults == 1

    def test_stuck_swallows_so_the_stale_value_persists(self):
        board = self._board()
        gate = self._gate(("stuck",), board)
        board.publish("pos", 7)
        gate.advance(0.5)
        board.publish("pos", 9)
        assert board.read("pos") == 7

    def test_delay_buffers_until_due(self):
        board = self._board()
        gate = self._gate(("delay",), board, delay=0.3)
        board.publish("pos", 1)
        gate.advance(0.5)
        board.publish("pos", 2)
        assert board.read("pos") == 1  # buffered, not delivered
        gate.advance(0.7)
        assert board.read("pos") == 1  # still in flight
        gate.advance(0.8)
        assert board.read("pos") == 2  # delivered at publish time + delay

    def test_reset_clears_pending_and_decisions(self):
        board = self._board()
        gate = self._gate(("delay",), board, delay=0.3)
        gate.advance(0.5)
        board.publish("pos", 2)
        gate.reset()
        gate.bind_strategy(ScriptedStrategy([0]))  # this execution: no fault
        gate.advance(0.8)
        assert board.read("pos") == 0  # pending write was discarded
        gate.advance(0.6)
        board.publish("pos", 5)
        assert board.read("pos") == 5
        assert gate.injected_faults == 0


class TestFaultPlane:
    def _system(self):
        node = ChoiceFaultInjector(_command_node(), _node_site(), rename="controller")
        program = Program(
            name="p",
            topics=[Topic("cmd", ControlCommand), Topic("pos", int, 0)],
            nodes=[node],
        )
        return SoterCompiler(strict=False).compile(program).system, node

    def test_adopt_finds_injectors_and_exposes_fault_sites(self):
        system, injector = self._system()
        plan = FaultPlan(
            sites=(
                injector.site,
                FaultSite(kinds=("drop",), windows=((0.0, 1.0),), topic="pos"),
            )
        )
        plane = FaultPlane(plan)
        assert plane.adopt(system) is plane
        plane.adopt(system)  # idempotent
        assert plane.injectors == [injector]
        assert len(plane.fault_sites) == 2

    def test_bind_strategy_reaches_gate_and_injectors(self):
        system, injector = self._system()
        plan = FaultPlan(sites=(injector.site,))
        plane = FaultPlane(plan).adopt(system)
        strategy = ScriptedStrategy([1])
        plane.bind_strategy(strategy)
        assert injector.step(0.0, {}) == {}
        assert strategy.labels == ["fault:node:controller.faultable:w0"]

    def test_apply_installs_gate_once_and_advances_clock(self):
        class FakeEngine:
            def __init__(self, board):
                self.board = board

        registry = TopicRegistry()
        registry.declare(Topic("pos", int, 0))
        board = TopicBoard(registry=registry)
        plan = FaultPlan(
            sites=(FaultSite(kinds=("drop",), windows=((0.5, 1.0),), topic="pos"),)
        )
        plane = FaultPlane(plan)
        plane.bind_strategy(ScriptedStrategy([1]))
        engine = FakeEngine(board)
        plane.apply(engine, 0.0)
        assert board._gate is plane.gate
        plane.apply(engine, 0.6)
        board.publish("pos", 3)
        assert board.read("pos") is None  # DROP active at the advanced clock
