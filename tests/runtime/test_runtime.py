"""Tests for schedulers, tracing, executors, and fault injection."""

import pytest

from repro.core import ConstantNode, FunctionNode, Program, SafetySpec, SoterCompiler, Topic
from repro.core.monitor import MonitorSuite, TopicSafetyMonitor
from repro.core.semantics import SemanticsEngine
from repro.dynamics import ControlCommand
from repro.geometry import Vec3
from repro.runtime import (
    ExecutionTrace,
    FaultInjector,
    FaultKind,
    FaultSpec,
    JitteryOSScheduler,
    OverloadScheduler,
    PerfectScheduler,
    SimulatedTimeExecutor,
    WallClockExecutor,
)


def _counting_system(period=0.1):
    node = ConstantNode("ticker", {"ticks": 1}, period=period)
    program = Program(name="count", topics=[Topic("ticks", int, 0)], nodes=[node])
    return SoterCompiler().compile(program).system


class TestSchedulers:
    def test_perfect_scheduler(self):
        node = ConstantNode("n", {"x": 1})
        scheduler = PerfectScheduler()
        assert scheduler.release_jitter(node, 0.0) == 0.0
        assert not scheduler.drops_execution(node, 0.0)

    def test_jittery_scheduler_bounds_and_reproducibility(self):
        node = ConstantNode("n", {"x": 1})
        a = JitteryOSScheduler(max_jitter=0.05, drop_rate=0.1, seed=3)
        b = JitteryOSScheduler(max_jitter=0.05, drop_rate=0.1, seed=3)
        jitters_a = [a.release_jitter(node, t) for t in range(20)]
        jitters_b = [b.release_jitter(node, t) for t in range(20)]
        assert jitters_a == jitters_b
        assert all(0.0 <= j <= 0.05 for j in jitters_a)

    def test_jittery_scheduler_only_affects_listed_nodes(self):
        target = ConstantNode("target", {"x": 1})
        other = ConstantNode("other", {"y": 1})
        scheduler = JitteryOSScheduler(max_jitter=0.5, drop_rate=1.0, seed=0, only_nodes=["target"])
        assert scheduler.drops_execution(target, 0.0)
        assert not scheduler.drops_execution(other, 0.0)
        assert scheduler.release_jitter(other, 0.0) == 0.0

    def test_jittery_scheduler_validation(self):
        from repro.core.errors import SchedulingError

        with pytest.raises(SchedulingError):
            JitteryOSScheduler(max_jitter=-0.1)
        with pytest.raises(SchedulingError):
            JitteryOSScheduler(drop_rate=1.5)

    def test_overload_scheduler_window(self):
        node = ConstantNode("victim", {"x": 1})
        scheduler = OverloadScheduler(starved_nodes=["victim"], start_time=1.0, end_time=2.0)
        assert not scheduler.drops_execution(node, 0.5)
        assert scheduler.drops_execution(node, 1.5)
        assert not scheduler.drops_execution(node, 2.5)

    def test_jitter_slows_down_firing_cadence(self):
        system = _counting_system(period=0.1)
        engine = SemanticsEngine(system, scheduler=JitteryOSScheduler(max_jitter=0.08, drop_rate=0.0, seed=1))
        engine.run_until(2.0)
        jittered_firings = engine.stats.node_firings
        baseline = SemanticsEngine(_counting_system(period=0.1))
        baseline.run_until(2.0)
        assert jittered_firings <= baseline.stats.node_firings


class TestExecutionTrace:
    def test_trace_collects_events(self):
        system = _counting_system()
        trace = ExecutionTrace()
        engine = SemanticsEngine(system, listeners=[trace])
        engine.set_input("wind", 1.0)
        engine.run_until(0.5)
        assert len(trace.firings) == 6
        assert trace.inputs == 1
        assert trace.firings_of("ticker")
        summary = trace.summary()
        assert summary["firings"] == 6

    def test_samples_and_signals(self):
        trace = ExecutionTrace()
        trace.add_sample(0.0, "clearance", 3.0)
        trace.add_sample(1.0, "clearance", 2.0)
        trace.note("something happened")
        assert trace.signal("clearance") == [(0.0, 3.0), (1.0, 2.0)]
        assert trace.min_signal("clearance") == 2.0
        assert trace.min_signal("missing") is None
        assert trace.duration() == pytest.approx(1.0)
        assert trace.notes == ["something happened"]

    def test_switch_export_csv(self):
        from repro.core.decision import Mode

        trace = ExecutionTrace()
        trace.on_mode_switch(1.0, "m", Mode.AC, Mode.SC, "test")
        csv_text = trace.switches_to_csv()
        assert "module" in csv_text and "m" in csv_text
        assert trace.disengagements("m")
        assert not trace.disengagements("other")


class TestExecutors:
    def test_simulated_executor_runs_and_monitors(self):
        system = _counting_system()
        monitors = MonitorSuite([
            TopicSafetyMonitor("ticks-positive", "ticks", SafetySpec("pos", lambda x: x >= 0))
        ])
        executor = SimulatedTimeExecutor(system, monitors=monitors, monitor_period=0.1)
        result = executor.run(duration=1.0)
        assert result.safe
        assert result.end_time >= 1.0 - 1e-9
        assert result.trace.firings

    def test_simulated_executor_environment_hook(self):
        node = FunctionNode(
            "echo", lambda now, inputs: {"echoed": inputs.get("signal")},
            subscribes=("signal",), publishes=("echoed",), period=0.1,
        )
        program = Program(name="echo", topics=[Topic("signal"), Topic("echoed")], nodes=[node])
        system = SoterCompiler().compile(program).system
        executor = SimulatedTimeExecutor(system)
        result = executor.run(duration=0.5, environment=lambda eng, t: eng.set_input("signal", t))
        assert result.engine.read_topic("echoed") is not None

    def test_invalid_monitor_period(self):
        with pytest.raises(ValueError):
            SimulatedTimeExecutor(_counting_system(), monitor_period=0.0)

    def test_wall_clock_executor_paces_execution(self):
        executor = WallClockExecutor(_counting_system(period=0.05), time_scale=50.0)
        result = executor.run(duration=0.5)
        assert result.end_time >= 0.45
        with pytest.raises(ValueError):
            WallClockExecutor(_counting_system(), time_scale=0.0)


class TestFaultInjection:
    def _command_node(self):
        return ConstantNode(
            "controller", {"cmd": ControlCommand(acceleration=Vec3(1.0, 0.0, 0.0))}, period=0.1
        )

    def test_drop_fault_suppresses_outputs(self):
        injector = FaultInjector(self._command_node(), FaultSpec(kind=FaultKind.DROP, probability=1.0))
        assert injector.step(0.0, {}) == {}
        assert injector.injected_faults == 1

    def test_stuck_fault_repeats_last_output(self):
        node = self._command_node()
        injector = FaultInjector(node, FaultSpec(kind=FaultKind.STUCK, probability=1.0, start_time=0.5))
        first = injector.step(0.0, {})  # before the fault window: passes through
        stuck = injector.step(1.0, {})
        assert stuck == first

    def test_bias_and_invert_faults_change_command(self):
        bias = FaultInjector(self._command_node(), FaultSpec(kind=FaultKind.BIAS, probability=1.0, magnitude=2.0))
        biased = bias.step(0.0, {})["cmd"]
        assert biased.acceleration.x == pytest.approx(3.0)
        invert = FaultInjector(self._command_node(), FaultSpec(kind=FaultKind.INVERT, probability=1.0))
        inverted = invert.step(0.0, {})["cmd"]
        assert inverted.acceleration.x == pytest.approx(-1.0)

    def test_noise_fault_is_bounded_and_seeded(self):
        def run():
            injector = FaultInjector(
                self._command_node(), FaultSpec(kind=FaultKind.NOISE, probability=1.0, magnitude=0.5, seed=7)
            )
            return injector.step(0.0, {})["cmd"].acceleration

        assert run().almost_equal(run())
        assert abs(run().x - 1.0) <= 0.5 + 1e-9

    def test_fault_window_and_probability(self):
        spec = FaultSpec(kind=FaultKind.DROP, probability=1.0, start_time=10.0, end_time=20.0)
        injector = FaultInjector(self._command_node(), spec)
        assert injector.step(0.0, {}) != {}
        assert injector.step(15.0, {}) == {}
        assert injector.step(25.0, {}) != {}

    def test_injector_preserves_node_signature(self):
        node = self._command_node()
        injector = FaultInjector(node, FaultSpec(kind=FaultKind.DROP), rename="controller.bad")
        assert injector.name == "controller.bad"
        assert injector.subscribes == node.subscribes
        assert injector.publishes == node.publishes
        assert injector.period == node.period

    def test_non_command_values_pass_through_value_faults(self):
        node = ConstantNode("n", {"data": 42}, period=0.1)
        injector = FaultInjector(node, FaultSpec(kind=FaultKind.NOISE, probability=1.0))
        assert injector.step(0.0, {})["data"] == 42

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DROP, probability=2.0)
        with pytest.raises(ValueError):
            FaultSpec(kind=FaultKind.DROP, start_time=5.0, end_time=1.0)

    def test_reset_restores_seed_and_counters(self):
        injector = FaultInjector(
            self._command_node(), FaultSpec(kind=FaultKind.DROP, probability=0.5, seed=9)
        )
        outcomes_first = [injector.step(t * 0.1, {}) == {} for t in range(20)]
        injector.reset()
        outcomes_second = [injector.step(t * 0.1, {}) == {} for t in range(20)]
        assert outcomes_first == outcomes_second
