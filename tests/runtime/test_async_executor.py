"""AsyncSimulatedTimeExecutor: step-for-step parity with the sync executor.

The asyncio twin must be indistinguishable from ``SimulatedTimeExecutor``
on hook-free (and plain-sync-hook) workloads: identical traces, monitor
verdicts, engine stats and end times on every registered scenario.  Its
one new capability — awaitable environment hooks — must suspend the
mission at the hook point without perturbing the semantics, so several
missions interleave on one event loop and each still matches its solo
run.
"""

import asyncio

import pytest

import repro.apps.scenarios  # noqa: F401 — registers the built-in scenarios
from repro.core import ConstantNode, Program, SafetySpec, SoterCompiler, Topic
from repro.core.monitor import MonitorSuite, TopicSafetyMonitor
from repro.runtime import AsyncSimulatedTimeExecutor, SimulatedTimeExecutor
from repro.testing import RandomStrategy, registered_scenarios, scenario_factory


def _bind(instance, strategy):
    """Mimic ``SystematicTester._bind_strategy`` for a bare executor run."""
    if instance.environment is not None:
        instance.environment.reset()
        instance.environment.bind_strategy(strategy)
    for node in instance.system.all_nodes():
        bind = getattr(node, "bind_strategy", None)
        if bind is not None:
            bind(strategy)
    strategy.execution_started()


def _fingerprint(result):
    """Everything parity cares about, in comparable form.

    Violations compare by identity key rather than dataclass equality
    because ``Violation.state`` may hold rich engine objects.
    """
    return (
        result.trace.firings,
        result.trace.switches,
        result.trace.samples,
        result.trace.inputs,
        [(v.time, v.monitor, v.message) for v in result.monitors.violations],
        result.end_time,
        result.engine.stats,
        result.engine.current_time,
    )


def _run_sync(instance, strategy=None, **executor_kw):
    if strategy is not None:
        _bind(instance, strategy)
    executor = SimulatedTimeExecutor(
        instance.system, monitors=instance.monitors, **executor_kw
    )
    env = instance.environment.apply if instance.environment is not None else None
    return executor.run(instance.horizon, environment=env)


def _run_async(instance, strategy=None, **executor_kw):
    if strategy is not None:
        _bind(instance, strategy)
    executor = AsyncSimulatedTimeExecutor(
        instance.system, monitors=instance.monitors, **executor_kw
    )
    env = instance.environment.apply if instance.environment is not None else None
    return asyncio.run(executor.run(instance.horizon, environment=env))


@pytest.mark.parametrize("name", registered_scenarios())
def test_parity_on_every_registered_scenario(name):
    # Unbound strategies degrade to deterministic option 0, so two fresh
    # instances of the same scenario are directly comparable.
    sync_result = _run_sync(scenario_factory(name)())
    async_result = _run_async(scenario_factory(name)())
    assert _fingerprint(async_result) == _fingerprint(sync_result)


@pytest.mark.parametrize("name", ["drone-surveillance", "fault-injected-planner"])
@pytest.mark.parametrize("seed", [3, 11])
def test_parity_under_a_bound_random_strategy(name, seed):
    # Same-seeded strategies make identical choices on both instances, so
    # the nondeterministic paths (environment injections, fault windows)
    # are exercised too.
    sync_result = _run_sync(
        scenario_factory(name)(), strategy=RandomStrategy(seed=seed)
    )
    async_result = _run_async(
        scenario_factory(name)(), strategy=RandomStrategy(seed=seed)
    )
    assert _fingerprint(async_result) == _fingerprint(sync_result)


def test_parity_with_batched_monitors_and_yield_every():
    name = "drone-surveillance"
    sync_result = _run_sync(scenario_factory(name)(), monitor_batch=16)
    async_result = _run_async(
        scenario_factory(name)(), monitor_batch=16, yield_every=7
    )
    assert _fingerprint(async_result) == _fingerprint(sync_result)


def _ticker_system(period=0.05):
    node = ConstantNode("ticker", {"ticks": 1}, period=period)
    program = Program(name="tick", topics=[Topic("ticks", int, None)], nodes=[node])
    return SoterCompiler().compile(program).system


def _suite():
    return MonitorSuite(
        [TopicSafetyMonitor("positive", "ticks", SafetySpec("pos", lambda x: x > 0))]
    )


def test_async_hook_is_awaited_and_semantics_match_sync():
    awaited = []

    async def async_hook(engine, upcoming):
        awaited.append(upcoming)
        await asyncio.sleep(0)

    async_executor = AsyncSimulatedTimeExecutor(
        _ticker_system(), monitors=_suite(), monitor_period=0.1
    )
    async_result = asyncio.run(async_executor.run(0.5, environment=async_hook))
    assert awaited  # the coroutine hook actually ran (and was awaited)

    sync_executor = SimulatedTimeExecutor(
        _ticker_system(), monitors=_suite(), monitor_period=0.1
    )
    sync_result = sync_executor.run(0.5)
    assert _fingerprint(async_result) == _fingerprint(sync_result)


def test_missions_interleave_on_one_event_loop():
    # Two missions whose hooks yield at every step must make interleaved
    # progress — neither monopolises the loop — and still match solo runs.
    log = []

    def mission(tag):
        executor = AsyncSimulatedTimeExecutor(
            _ticker_system(), monitors=_suite(), monitor_period=0.1
        )

        async def hook(engine, upcoming):
            log.append(tag)
            await asyncio.sleep(0)

        return executor.run(1.0, environment=hook)

    async def both():
        return await asyncio.gather(mission("a"), mission("b"))

    result_a, result_b = asyncio.run(both())
    assert _fingerprint(result_a) == _fingerprint(result_b)
    # Interleaved, not a→a→…→a then b→b→…→b.
    first_b = log.index("b")
    assert "a" in log[first_b:]

    solo = asyncio.run(mission("solo"))
    assert _fingerprint(solo) == _fingerprint(result_a)


def test_stop_when_checked_after_each_step():
    executor = AsyncSimulatedTimeExecutor(_ticker_system(period=0.1))
    result = asyncio.run(
        executor.run(10.0, stop_when=lambda engine: engine.current_time >= 0.3)
    )
    sync = SimulatedTimeExecutor(_ticker_system(period=0.1)).run(
        10.0, stop_when=lambda engine: engine.current_time >= 0.3
    )
    assert result.end_time == sync.end_time
    assert _fingerprint(result) == _fingerprint(sync)


def test_run_is_reentrant():
    monitors = MonitorSuite(
        [TopicSafetyMonitor("negative", "ticks", SafetySpec("neg", lambda x: x < 0))]
    )
    executor = AsyncSimulatedTimeExecutor(
        _ticker_system(), monitors=monitors, monitor_period=0.1
    )
    asyncio.run(executor.run(0.5))
    first = [(v.time, v.monitor, v.message) for v in monitors.violations]
    assert first  # ticks=1 violates x<0 at every sample
    asyncio.run(executor.run(0.5))
    assert [(v.time, v.monitor, v.message) for v in monitors.violations] == first


@pytest.mark.parametrize(
    "kwargs",
    [
        {"monitor_period": 0.0},
        {"monitor_batch": 0},
        {"yield_every": -1},
    ],
)
def test_constructor_validation(kwargs):
    with pytest.raises(ValueError):
        AsyncSimulatedTimeExecutor(_ticker_system(), **kwargs)
