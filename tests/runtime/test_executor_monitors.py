"""Executor monitor paths: WallClock monitors and windowed SimulatedTime."""

import pytest

from repro.core import ConstantNode, Program, SafetySpec, SoterCompiler, Topic
from repro.core.monitor import MonitorSuite, TopicSafetyMonitor
from repro.runtime import SimulatedTimeExecutor, WallClockExecutor


def _bad_tick_system(period=0.05):
    # A node whose published value violates the spec on every sample.
    node = ConstantNode("ticker", {"ticks": -1}, period=period)
    program = Program(name="count", topics=[Topic("ticks", int, None)], nodes=[node])
    return SoterCompiler().compile(program).system


def _suite():
    return MonitorSuite(
        [TopicSafetyMonitor("positive", "ticks", SafetySpec("pos", lambda x: x > 0))]
    )


class TestWallClockExecutorMonitors:
    def test_monitors_are_checked_on_schedule(self):
        monitors = _suite()
        executor = WallClockExecutor(
            _bad_tick_system(),
            time_scale=100.0,
            monitors=monitors,
            monitor_period=0.1,
        )
        result = executor.run(0.5)
        assert result.monitors is monitors
        assert not result.safe
        # One check per monitor period that had a published value by then.
        assert 3 <= len(monitors.violations) <= 6
        times = [v.time for v in monitors.violations]
        assert times == sorted(times)

    def test_runs_without_monitors_as_before(self):
        result = WallClockExecutor(_bad_tick_system(), time_scale=100.0).run(0.2)
        assert result.safe  # no monitors -> nothing to violate
        assert result.end_time > 0.0

    def test_monitor_period_validated(self):
        with pytest.raises(ValueError):
            WallClockExecutor(_bad_tick_system(), monitor_period=0.0)


class TestSimulatedTimeExecutorBatching:
    def _violations(self, monitor_batch):
        monitors = _suite()
        executor = SimulatedTimeExecutor(
            _bad_tick_system(),
            monitors=monitors,
            monitor_period=0.05,
            monitor_batch=monitor_batch,
        )
        executor.run(1.0)
        return [(v.time, v.monitor, v.message) for v in monitors.violations]

    def test_batched_monitors_match_scalar(self):
        scalar = self._violations(monitor_batch=1)
        assert scalar  # the spec must actually fire
        for window in (4, 64):
            assert self._violations(monitor_batch=window) == scalar

    def test_monitor_batch_validated(self):
        with pytest.raises(ValueError):
            SimulatedTimeExecutor(_bad_tick_system(), monitor_batch=0)
