"""Multi-vehicle fleet composition: namespaces, monitors, and co-simulation."""

import pytest

from repro.apps import (
    DEFAULT_NAMESPACE,
    FleetConfig,
    StackConfig,
    TopicNamespace,
    build_fleet_discrete_model,
    build_fleet_stack,
    fleet_configs,
    standard_topics,
    vehicle_namespace,
)
from repro.core import CompositionError, SeparationMonitor
from repro.geometry import Vec3
from repro.simulation import FleetSimulationConfig, surveillance_city


@pytest.fixture(scope="module")
def world():
    return surveillance_city()


def _base(world, **overrides):
    return StackConfig(
        world=world,
        planner="straight",
        protect_battery=False,
        protect_motion_primitive=True,
        **overrides,
    )


class TestTopicNamespace:
    def test_default_namespace_is_the_identity(self):
        assert DEFAULT_NAMESPACE.prefix == ""
        assert DEFAULT_NAMESPACE.position == "localPosition"
        assert DEFAULT_NAMESPACE.scoped("surveillance") == "surveillance"
        assert [t.name for t in DEFAULT_NAMESPACE.topics()] == [
            t.name for t in standard_topics()
        ]

    def test_vehicle_namespace_convention(self):
        assert vehicle_namespace(0, 1) is DEFAULT_NAMESPACE
        assert vehicle_namespace(0, 3).prefix == "drone0/"
        assert vehicle_namespace(2, 3).position == "drone2/localPosition"
        with pytest.raises(ValueError):
            vehicle_namespace(3, 3)
        with pytest.raises(ValueError):
            vehicle_namespace(-1, 2)

    def test_prefixed_topics_carry_the_same_types(self):
        prefixed = TopicNamespace("droneX/").topics()
        plain = standard_topics()
        assert [(t.name, t.value_type) for t in prefixed] == [
            (f"droneX/{t.name}", t.value_type) for t in plain
        ]


class TestFleetConfigs:
    def test_vehicle_zero_keeps_the_base_configuration(self, world):
        base = _base(world, seed=4)
        configs = fleet_configs(3, base)
        assert configs[0].namespace.prefix == "drone0/"
        assert configs[0].seed == base.seed
        assert configs[0].goals == base.goals  # untouched (None -> world points)
        assert configs[0].start_position == base.start_position

    def test_later_vehicles_fly_rotated_tours(self, world):
        base = _base(world)
        configs = fleet_configs(2, base)
        points = list(world.surveillance_points)
        assert list(configs[1].goals) == points[3:] + points[:3]
        assert configs[1].start_position == points[3]
        # Seeds are spaced by two: each vehicle consumes (seed, seed + 1)
        # for its estimator/battery-sensor streams, so adjacent vehicles
        # must never share either value.
        assert configs[1].seed == base.seed + 2

    def test_sensor_seed_streams_never_alias_across_vehicles(self, world):
        configs = fleet_configs(4, _base(world, seed=0))
        consumed = [(c.seed, c.seed + 1) for c in configs]
        flat = [value for pair in consumed for value in pair]
        assert len(set(flat)) == len(flat)

    def test_single_vehicle_fleet_is_the_plain_stack(self, world):
        (only,) = fleet_configs(1, _base(world))
        assert only.namespace is DEFAULT_NAMESPACE

    def test_validation(self, world):
        base = _base(world)
        with pytest.raises(ValueError):
            fleet_configs(0, base)
        with pytest.raises(ValueError, match="distinct"):
            FleetConfig(vehicles=[base, base])
        other_world = surveillance_city()
        with pytest.raises(ValueError, match="workspace"):
            FleetConfig(
                vehicles=[
                    base,
                    _base(other_world, namespace=vehicle_namespace(1, 2)),
                ]
            )
        with pytest.raises(ValueError, match="min_separation"):
            FleetConfig(vehicles=fleet_configs(2, base), min_separation=0.0)


class TestFleetDiscreteModel:
    def test_three_vehicle_composition_compiles(self, world):
        model = build_fleet_discrete_model(
            FleetConfig(vehicles=fleet_configs(3, _base(world)))
        )
        names = [node.name for node in model.system.all_nodes()]
        assert len(names) == len(set(names))
        for index in range(3):
            assert f"drone{index}/surveillance" in names
            assert f"drone{index}/SafeMotionPrimitive.dm" in names
        # Per-vehicle topic planes are disjoint.
        topics = [topic.name for topic in model.program.topics]
        assert len(topics) == len(set(topics)) == 18
        assert isinstance(model.separation, SeparationMonitor)
        assert model.separation in model.monitors.monitors
        assert model.separation.topics == tuple(
            f"drone{i}/localPosition" for i in range(3)
        )
        assert len(model.vehicles) == 3

    def test_single_vehicle_fleet_has_no_separation_monitor(self, world):
        model = build_fleet_discrete_model(
            FleetConfig(vehicles=fleet_configs(1, _base(world)))
        )
        assert model.separation is None
        assert [m.name for m in model.monitors.monitors] == [
            "phi_obs(estimated)",
            "phi_inv[SafeMotionPrimitive]",
        ]

    def test_clashing_namespaces_fail_composition(self, world):
        base = _base(world)
        # Same prefix on both vehicles: FleetConfig rejects it up front...
        with pytest.raises(ValueError):
            FleetConfig(vehicles=[base, base])
        # ...and the compiler would reject the merged program anyway.
        from repro.apps.stack import _assemble_program, _merge_fleet_program
        from repro.core import Program, SoterCompiler

        fleet = FleetConfig(vehicles=fleet_configs(2, base))
        assemblies = [_assemble_program(base), _assemble_program(base)]
        program = _merge_fleet_program(fleet, assemblies)
        with pytest.raises(Exception):
            SoterCompiler(strict=True).compile(program)


class TestFleetSimulation:
    def test_two_vehicle_mission_flies_and_stays_separated(self, world):
        fleet = FleetConfig(
            vehicles=fleet_configs(2, _base(world, estimator_noise=0.0)),
            min_separation=2.0,
        )
        stack = build_fleet_stack(fleet, FleetSimulationConfig(physics_dt=0.02))
        assert stack.separation is not None
        result = stack.run(duration=6.0, stop_on_complete=False)
        assert result.end_time > 0.0
        assert not result.crashed
        for channel in stack.channels:
            assert channel.plant.distance_flown > 0.5, f"{channel.name} never moved"
        # Rotated tours keep the pair apart; the monitor saw no conflicts.
        assert stack.separation.result.ok
        assert result.min_separation_observed() > fleet.min_separation

    def test_fleet_reset_reruns_identically(self, world):
        fleet = FleetConfig(vehicles=fleet_configs(2, _base(world)))
        stack = build_fleet_stack(fleet)

        def run_once():
            result = stack.simulation.run(2.0)
            return {
                name: [
                    (s.time, s.position.as_tuple(), s.velocity.as_tuple())
                    for s in trajectory.samples
                ]
                for name, trajectory in result.trajectories.items()
            }

        first = run_once()
        stack.simulation.reset()
        assert stack.simulation.engine.current_time == 0.0
        assert run_once() == first

    def test_namespaced_single_stack_simulation_actually_flies(self, world):
        # build_stack must wire the co-simulation's sensor/command topics
        # from the config's namespace: with a prefixed namespace and the
        # default topic names the sensors would publish where no node
        # listens and the mission would sit still, vacuously safe.
        from repro.apps import build_stack, vehicle_namespace

        config = _base(
            world, estimator_noise=0.0, namespace=vehicle_namespace(0, 2)
        )
        stack = build_stack(config)
        assert stack.simulation.config.position_topic == "drone0/localPosition"
        assert stack.simulation.config.command_topic == "drone0/controlCommand"
        stack.simulation.run(3.0)
        assert stack.plant.distance_flown > 0.5

    def test_colocated_starts_trip_the_separation_monitor(self, world):
        base = _base(world, estimator_noise=0.0)
        configs = fleet_configs(2, base)
        # Park both drones on the same pad.
        from dataclasses import replace

        start = Vec3(4.0, 4.0, 2.0)
        configs = [replace(c, start_position=start, goals=[start]) for c in configs]
        fleet = FleetConfig(vehicles=configs, min_separation=2.0)
        stack = build_fleet_stack(fleet)
        result = stack.run(duration=1.0, stop_on_complete=False)
        assert not result.monitors.ok
        assert any(
            violation.monitor == "phi_separation"
            for violation in result.monitors.violations
        )
