"""Tests for the three case-study RTA modules and their well-formedness."""

import pytest

from repro.apps import (
    BATTERY_TOPIC,
    MOTION_PLAN_TOPIC,
    POSITION_TOPIC,
    DroneClosedLoopModel,
    StraightLinePlanner,
    build_battery_safety,
    build_safe_motion_planner,
    build_safe_motion_primitive,
)
from repro.apps.modules import BatteryModuleConfig, MotionPrimitiveModuleConfig, PlannerModuleConfig
from repro.control import AggressiveTracker
from repro.core import CheckerOptions, WellFormednessChecker, structural_report
from repro.core.decision import DecisionModule, Mode
from repro.dynamics import BatteryModel, BatteryParams, BoundedDoubleIntegrator, DoubleIntegratorParams, DroneState
from repro.geometry import Vec3
from repro.planning import GridAStarPlanner, straight_line_plan
from repro.simulation.drone import BatteryStatus


@pytest.fixture
def model():
    return BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))


@pytest.fixture
def mp_module(range_world, model):
    return build_safe_motion_primitive(
        workspace=range_world.workspace,
        model=model,
        advanced_tracker=AggressiveTracker(cruise_speed=3.5, max_acceleration=6.0),
    )


class TestMotionPrimitiveModule:
    def test_structure_matches_p1(self, mp_module):
        spec = mp_module.spec
        assert spec.advanced.publishes == spec.safe.publishes
        assert spec.advanced.period <= spec.delta
        assert spec.state_topics == (POSITION_TOPIC,)
        report = structural_report(spec, DecisionModule(spec))
        assert report.passed

    def test_safer_set_is_inside_safe_set(self, mp_module, range_world):
        spec = mp_module.spec
        for x in range(2, 38, 2):
            for y in range(2, 12, 2):
                state = DroneState(position=Vec3(float(x), float(y), 2.0))
                if spec.safer_spec.contains(state):
                    assert spec.safe_spec.contains(state)
                    # Property P3 consistency: φ_safer states never trigger ttf.
                    assert not spec.ttf(state)

    def test_ttf_is_speed_dependent(self, mp_module):
        position = Vec3(6.0, 4.0, 2.0)  # ~1.5 m from the g1 keep-out block
        slow = DroneState(position=position, velocity=Vec3(0.0, 0.0, 0.0))
        fast = DroneState(position=position, velocity=Vec3(4.0, 0.0, 0.0))
        assert mp_module.spec.ttf(fast)

    def test_collision_states_are_unsafe(self, mp_module):
        inside_block = DroneState(position=Vec3(36.5, 3.5, 2.0))
        assert not mp_module.spec.safe_spec.contains(inside_block)

    def test_certificate_present(self, mp_module):
        certificate = mp_module.spec.certificate
        assert certificate is not None
        assert certificate.proves_p2a and certificate.proves_p2b and certificate.proves_p3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MotionPrimitiveModuleConfig(delta=0.1, node_period=0.2)
        with pytest.raises(ValueError):
            MotionPrimitiveModuleConfig(delta=0.0)

    def test_falsification_based_wellformedness(self, mp_module, model, range_world):
        """The full checker validates the real module with sampled rollouts."""
        closed_loop = DroneClosedLoopModel(mp_module, model, range_world.workspace, seed=1)
        checker = WellFormednessChecker(
            closed_loop,
            CheckerOptions(samples=5, p2a_horizon=8.0, p2b_max_time=12.0, trust_certificates=False),
        )
        report = checker.check(mp_module.spec)
        assert report.result_for("P3").passed, report.summary()
        assert report.result_for("ttf-consistency").passed, report.summary()
        assert report.result_for("P2a").passed, report.summary()


class TestBatteryModule:
    def test_structure_and_predicates(self):
        params = BatteryParams(idle_rate=0.008, accel_rate=0.002)
        module = build_battery_safety(BatteryModel(params))
        spec = module.spec
        assert spec.state_topics == (BATTERY_TOPIC,)
        assert structural_report(spec, DecisionModule(spec)).passed
        assert spec.safe_spec.contains(BatteryStatus(charge=0.5, altitude=3.0))
        assert not spec.safe_spec.contains(BatteryStatus(charge=0.0, altitude=3.0))
        # An empty battery on the ground is not a φ_bat violation.
        assert spec.safe_spec.contains(BatteryStatus(charge=0.0, altitude=0.0))
        assert spec.safer_spec.contains(BatteryStatus(charge=0.9, altitude=3.0))
        assert not spec.safer_spec.contains(BatteryStatus(charge=0.5, altitude=3.0))

    def test_ttf_matches_battery_model_threshold(self):
        params = BatteryParams(idle_rate=0.008, accel_rate=0.002)
        battery_model = BatteryModel(params)
        module = build_battery_safety(battery_model)
        two_delta = 2.0 * module.spec.delta
        threshold = battery_model.landing_charge_bound() + battery_model.max_cost(two_delta)
        below = BatteryStatus(charge=max(0.0, threshold - 0.01), altitude=None or 5.0)
        above = BatteryStatus(charge=min(1.0, threshold + 0.05), altitude=5.0)
        assert module.spec.ttf(below)

    def test_dm_switching_behaviour(self):
        module = build_battery_safety(BatteryModel(BatteryParams(idle_rate=0.008, accel_rate=0.002)))
        dm = DecisionModule(module.spec)
        dm.step(0.0, {BATTERY_TOPIC: BatteryStatus(charge=1.0, altitude=2.0)})
        assert dm.mode is Mode.AC
        dm.step(1.0, {BATTERY_TOPIC: BatteryStatus(charge=0.1, altitude=2.0)})
        assert dm.mode is Mode.SC
        # Battery cannot recover above 85%, so control stays with the SC.
        dm.step(2.0, {BATTERY_TOPIC: BatteryStatus(charge=0.09, altitude=1.0)})
        assert dm.mode is Mode.SC

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BatteryModuleConfig(delta=1.0, node_period=2.0)
        with pytest.raises(ValueError):
            BatteryModuleConfig(safer_charge=1.5)


class TestPlannerModule:
    def test_structure_and_predicates(self, range_world):
        module = build_safe_motion_planner(
            workspace=range_world.workspace,
            advanced_planner=StraightLinePlanner(altitude=2.0),
            certified_planner=GridAStarPlanner(range_world.workspace, clearance=1.0, altitude=2.0),
        )
        spec = module.spec
        assert spec.state_topics == (MOTION_PLAN_TOPIC,)
        assert structural_report(spec, DecisionModule(spec)).passed
        good = straight_line_plan(Vec3(6, 4, 2), Vec3(30, 4, 2))
        bad = straight_line_plan(Vec3(6, 4, 2), Vec3(38, 4, 2))  # passes through the g2 block
        assert spec.safe_spec.contains(good)
        assert not spec.safe_spec.contains(bad)
        assert spec.ttf(bad) and not spec.ttf(good)

    def test_dm_rejects_bad_plans(self, range_world):
        module = build_safe_motion_planner(
            workspace=range_world.workspace,
            advanced_planner=StraightLinePlanner(altitude=2.0),
            certified_planner=GridAStarPlanner(range_world.workspace, clearance=1.0, altitude=2.0),
        )
        dm = DecisionModule(module.spec)
        good = straight_line_plan(Vec3(6, 4, 2), Vec3(30, 4, 2))
        bad = straight_line_plan(Vec3(6, 4, 2), Vec3(38, 4, 2))
        dm.step(0.0, {MOTION_PLAN_TOPIC: good})
        assert dm.mode is Mode.AC
        dm.step(0.5, {MOTION_PLAN_TOPIC: bad})
        assert dm.mode is Mode.SC

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlannerModuleConfig(delta=0.5, node_period=1.0)
        with pytest.raises(ValueError):
            PlannerModuleConfig(plan_clearance=-1.0)
