"""Tests for the application-level nodes of the drone surveillance stack."""

import pytest

from repro.apps import (
    ACTIVE_PLAN_TOPIC,
    GOAL_TOPIC,
    MOTION_PLAN_TOPIC,
    POSITION_TOPIC,
    PlanForwardNode,
    PlannerNode,
    SafeLandingPlannerNode,
    StraightLinePlanner,
    SurveillanceNode,
    standard_topics,
)
from repro.dynamics import DroneState
from repro.geometry import Vec3, empty_workspace
from repro.planning import GridAStarPlanner, Plan, straight_line_plan


class TestTopics:
    def test_standard_topics_are_unique_and_typed(self):
        topics = standard_topics()
        names = [topic.name for topic in topics]
        assert len(names) == len(set(names))
        assert POSITION_TOPIC in names and ACTIVE_PLAN_TOPIC in names


class TestStraightLinePlanner:
    def test_plans_at_cruise_altitude(self):
        planner = StraightLinePlanner(altitude=3.0)
        plan = planner.plan(Vec3(0, 0, 1), Vec3(5, 0, 1))
        assert plan.waypoints[0].z == 3.0
        assert plan.final_waypoint.z == 3.0


class TestSurveillanceNode:
    def test_requires_goals(self):
        with pytest.raises(ValueError):
            SurveillanceNode(goals=[], random_goals=0)

    def test_publishes_current_goal(self):
        node = SurveillanceNode(goals=[Vec3(5, 5, 2), Vec3(9, 9, 2)], loop=False)
        outputs = node.step(0.0, {POSITION_TOPIC: DroneState(position=Vec3(0, 0, 2))})
        assert outputs[GOAL_TOPIC] == Vec3(5, 5, 2)

    def test_advances_goal_when_reached(self):
        node = SurveillanceNode(goals=[Vec3(5, 5, 2), Vec3(9, 9, 2)], loop=False, goal_tolerance=1.0)
        outputs = node.step(0.0, {POSITION_TOPIC: DroneState(position=Vec3(5, 5, 2))})
        assert outputs[GOAL_TOPIC] == Vec3(9, 9, 2)
        assert node.goals_visited == 1

    def test_mission_completes_without_looping(self):
        node = SurveillanceNode(goals=[Vec3(5, 5, 2)], loop=False, goal_tolerance=1.0)
        node.step(0.0, {POSITION_TOPIC: DroneState(position=Vec3(5, 5, 2))})
        assert node.mission_complete
        assert node.current_goal is None
        assert node.step(0.5, {POSITION_TOPIC: DroneState()}) == {}

    def test_looping_restarts_the_sequence(self):
        node = SurveillanceNode(goals=[Vec3(5, 5, 2), Vec3(9, 9, 2)], loop=True, goal_tolerance=1.0)
        node.step(0.0, {POSITION_TOPIC: DroneState(position=Vec3(5, 5, 2))})
        node.step(0.5, {POSITION_TOPIC: DroneState(position=Vec3(9, 9, 2))})
        assert not node.mission_complete
        assert node.current_goal == Vec3(5, 5, 2)
        assert node.goals_visited == 2

    def test_random_goals_respect_margin(self):
        workspace = empty_workspace(side=30.0, ceiling=10.0)
        node = SurveillanceNode(
            goals=[], random_goals=5, workspace=workspace, goal_margin=3.0, seed=4, altitude=2.0
        )
        assert len(node.goals) == 5
        for goal in node.goals:
            assert workspace.clearance(goal) >= 3.0

    def test_reset_restores_the_mission(self):
        node = SurveillanceNode(goals=[Vec3(5, 5, 2)], loop=False, goal_tolerance=1.0)
        node.step(0.0, {POSITION_TOPIC: DroneState(position=Vec3(5, 5, 2))})
        node.reset()
        assert not node.mission_complete
        assert node.goals_visited == 0

    def test_goal_tolerance_validation(self):
        with pytest.raises(ValueError):
            SurveillanceNode(goals=[Vec3()], goal_tolerance=0.0)


class TestPlannerNode:
    def _workspace(self):
        return empty_workspace(side=30.0, ceiling=10.0)

    def test_plans_when_goal_arrives(self):
        node = PlannerNode("planner", StraightLinePlanner(altitude=2.0))
        outputs = node.step(
            0.0, {GOAL_TOPIC: Vec3(9, 9, 2), POSITION_TOPIC: DroneState(position=Vec3(1, 1, 2))}
        )
        assert isinstance(outputs[MOTION_PLAN_TOPIC], Plan)
        assert node.plans_produced == 1

    def test_no_output_without_goal_or_state(self):
        node = PlannerNode("planner", StraightLinePlanner())
        assert node.step(0.0, {GOAL_TOPIC: None, POSITION_TOPIC: DroneState()}) == {}
        assert node.step(0.0, {GOAL_TOPIC: Vec3(), POSITION_TOPIC: None}) == {}

    def test_keeps_plan_until_goal_changes(self):
        node = PlannerNode("planner", StraightLinePlanner(altitude=2.0), replan_interval=100.0)
        inputs = {GOAL_TOPIC: Vec3(9, 9, 2), POSITION_TOPIC: DroneState(position=Vec3(1, 1, 2))}
        first = node.step(0.0, inputs)[MOTION_PLAN_TOPIC]
        second = node.step(0.5, inputs)[MOTION_PLAN_TOPIC]
        assert first.plan_id == second.plan_id
        third = node.step(
            1.0, {GOAL_TOPIC: Vec3(20, 20, 2), POSITION_TOPIC: DroneState(position=Vec3(1, 1, 2))}
        )[MOTION_PLAN_TOPIC]
        assert third.plan_id != first.plan_id

    def test_periodic_replanning(self):
        node = PlannerNode("planner", StraightLinePlanner(altitude=2.0), replan_interval=1.0)
        inputs = {GOAL_TOPIC: Vec3(9, 9, 2), POSITION_TOPIC: DroneState(position=Vec3(1, 1, 2))}
        first = node.step(0.0, inputs)[MOTION_PLAN_TOPIC]
        later = node.step(1.5, inputs)[MOTION_PLAN_TOPIC]
        assert later.plan_id != first.plan_id
        with pytest.raises(ValueError):
            PlannerNode("p", StraightLinePlanner(), replan_interval=0.0)

    def test_failed_queries_counted(self):
        workspace = self._workspace()
        from repro.geometry import AABB

        workspace.add_obstacle(AABB.from_footprint(14.0, 0.0, 2.0, 30.0, 10.0))
        planner = GridAStarPlanner(workspace, resolution=0.5, clearance=0.5, altitude=2.0)
        node = PlannerNode("planner", planner)
        outputs = node.step(
            0.0, {GOAL_TOPIC: Vec3(25, 15, 2), POSITION_TOPIC: DroneState(position=Vec3(2, 15, 2))}
        )
        assert outputs == {}
        assert node.failed_queries == 1


class TestBatteryNodes:
    def test_forward_node_relays_plans(self):
        node = PlanForwardNode()
        plan = straight_line_plan(Vec3(0, 0, 2), Vec3(5, 5, 2))
        assert node.step(0.0, {MOTION_PLAN_TOPIC: plan})[ACTIVE_PLAN_TOPIC] is plan
        assert node.step(0.0, {MOTION_PLAN_TOPIC: None}) == {}

    def test_landing_node_plans_descent_from_current_position(self):
        node = SafeLandingPlannerNode()
        state = DroneState(position=Vec3(4.0, 6.0, 3.0))
        plan = node.step(0.0, {POSITION_TOPIC: state})[ACTIVE_PLAN_TOPIC]
        assert plan.is_landing
        assert plan.final_waypoint == Vec3(4.0, 6.0, 0.0)

    def test_landing_plan_is_stable_while_close(self):
        node = SafeLandingPlannerNode(refresh_distance=1.5)
        first = node.step(0.0, {POSITION_TOPIC: DroneState(position=Vec3(4.0, 6.0, 3.0))})[ACTIVE_PLAN_TOPIC]
        second = node.step(0.2, {POSITION_TOPIC: DroneState(position=Vec3(4.2, 6.0, 2.5))})[ACTIVE_PLAN_TOPIC]
        assert first.plan_id == second.plan_id
        # Once the drone has moved far away (still cruising), the landing
        # plan is refreshed so it always starts at the current position.
        third = node.step(0.4, {POSITION_TOPIC: DroneState(position=Vec3(14.0, 6.0, 2.5))})[ACTIVE_PLAN_TOPIC]
        assert third.plan_id != first.plan_id

    def test_landing_node_needs_state(self):
        node = SafeLandingPlannerNode()
        assert node.step(0.0, {POSITION_TOPIC: None}) == {}
