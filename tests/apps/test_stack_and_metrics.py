"""Tests for the full-stack builder and the mission metrics."""

import pytest

from repro.apps import (
    CampaignMetrics,
    MissionMetrics,
    StackConfig,
    build_stack,
)
from repro.planning import PlannerBug
from repro.runtime import FaultKind, FaultSpec


class TestStackBuilder:
    def test_default_stack_has_two_modules(self, city_world):
        stack = build_stack(StackConfig(world=city_world, goals=city_world.surveillance_points[:2]))
        names = {module.name for module in stack.system.modules}
        assert names == {"SafeMotionPrimitive", "BatterySafety"}
        assert stack.motion_primitive is not None and stack.battery is not None
        assert stack.planner is None

    def test_planner_protection_adds_third_module(self, city_world):
        config = StackConfig(
            world=city_world, goals=city_world.surveillance_points[:2], protect_planner=True, planner="astar"
        )
        stack = build_stack(config)
        assert {module.name for module in stack.system.modules} == {
            "SafeMotionPrimitive", "BatterySafety", "SafeMotionPlanner",
        }

    def test_unprotected_stack_has_plain_nodes_only(self, city_world):
        config = StackConfig(
            world=city_world,
            goals=city_world.surveillance_points[:2],
            protect_motion_primitive=False,
            protect_battery=False,
        )
        stack = build_stack(config)
        assert stack.system.modules == []
        node_names = {node.name for node in stack.system.nodes}
        assert {"surveillance", "motionPlanner", "planRelay", "motionPrimitive"} <= node_names

    def test_sc_only_variant_uses_safe_tracker(self, city_world):
        config = StackConfig(
            world=city_world,
            goals=city_world.surveillance_points[:2],
            protect_motion_primitive=False,
            sc_only=True,
        )
        stack = build_stack(config)
        primitive = stack.system.node_named("motionPrimitive")
        assert primitive.tracker.name == "safe-tracker"

    def test_tracker_selection_and_validation(self, city_world):
        learned = build_stack(
            StackConfig(world=city_world, goals=city_world.surveillance_points[:1], tracker="learned")
        )
        assert learned.motion_primitive.advanced_node.tracker.name == "learned-tracker"
        with pytest.raises(ValueError):
            build_stack(StackConfig(world=city_world, goals=[city_world.home], tracker="mystery"))
        with pytest.raises(ValueError):
            build_stack(StackConfig(world=city_world, goals=[city_world.home], planner="mystery"))

    def test_tracker_fault_wraps_the_advanced_node(self, city_world):
        config = StackConfig(
            world=city_world,
            goals=city_world.surveillance_points[:1],
            tracker_fault=FaultSpec(kind=FaultKind.INVERT, probability=0.5),
        )
        stack = build_stack(config)
        assert stack.motion_primitive.spec.advanced.name.endswith(".faulty")

    def test_planner_bug_wraps_the_planner(self, city_world):
        config = StackConfig(
            world=city_world,
            goals=city_world.surveillance_points[:1],
            planner="astar",
            planner_bug=PlannerBug.CORNER_CUTTING,
        )
        stack = build_stack(config)
        planner_node = stack.system.node_named("motionPlanner")
        assert "corner-cutting" in planner_node.planner.name

    def test_mission_goals_default_to_world_points(self, city_world):
        config = StackConfig(world=city_world)
        assert list(config.mission_goals()) == list(city_world.surveillance_points)


class TestShortMissions:
    def test_protected_mission_completes_and_is_safe(self, city_world):
        config = StackConfig(
            world=city_world, goals=city_world.surveillance_points[:3], loop_goals=False, seed=5
        )
        stack = build_stack(config)
        metrics, result = stack.run(duration=200.0)
        assert metrics.completed
        assert metrics.safe
        assert metrics.goals_visited == 3
        assert metrics.monitor_violations == 0
        assert metrics.mission_time < 200.0

    def test_metrics_summary_is_readable(self, city_world):
        config = StackConfig(world=city_world, goals=city_world.surveillance_points[:2], seed=1)
        metrics, _ = build_stack(config).run(duration=150.0)
        text = metrics.summary()
        assert "mission time" in text and "disengagements" in text

    def test_metrics_mode_fractions_per_module(self, city_world):
        config = StackConfig(world=city_world, goals=city_world.surveillance_points[:2], seed=1)
        metrics, _ = build_stack(config).run(duration=150.0)
        assert set(metrics.ac_time_fraction.keys()) == {"SafeMotionPrimitive", "BatterySafety"}
        assert 0.0 <= metrics.overall_ac_fraction() <= 1.0


class TestCampaignMetrics:
    def _mission(self, crashed=False, disengagements=0, ac=1.0, time=100.0):
        return MissionMetrics(
            mission_time=time,
            distance_flown=time * 2.0,
            completed=not crashed,
            collided=crashed,
            crashed=crashed,
            landed_safely=False,
            battery_depleted_in_air=False,
            goals_visited=5,
            min_clearance=1.0,
            final_charge=0.8,
            disengagements={"SafeMotionPrimitive": disengagements},
            reengagements={"SafeMotionPrimitive": disengagements},
            ac_time_fraction={"SafeMotionPrimitive": ac},
        )

    def test_aggregation(self):
        campaign = CampaignMetrics()
        campaign.add(self._mission(disengagements=2, ac=0.9))
        campaign.add(self._mission(crashed=True, disengagements=1, ac=0.95))
        assert campaign.mission_count == 2
        assert campaign.total_disengagements == 3
        assert campaign.crashes == 1
        assert campaign.collisions == 1
        assert campaign.total_flight_time == pytest.approx(200.0)
        assert campaign.mean_ac_fraction() == pytest.approx(0.925)
        assert "missions" in campaign.summary()

    def test_empty_campaign(self):
        campaign = CampaignMetrics()
        assert campaign.mean_ac_fraction() == 1.0
        assert campaign.crashes == 0

    def test_total_disengagements_property(self):
        metrics = self._mission(disengagements=3)
        assert metrics.total_disengagements == 3
        assert metrics.total_reengagements == 3
        assert metrics.safe
