"""The documentation stays true: doctests run, intra-repo links resolve.

Two enforcement planes for ``docs/`` and the README:

* every ``>>>`` example in ``docs/*.md`` and in the public testing API's
  docstrings executes and produces the documented output (the CI docs
  job additionally runs ``python -m doctest docs/*.md`` directly);
* every intra-repo markdown link in ``docs/*.md`` and ``README.md``
  points at a file that exists (external ``http(s)`` links and pure
  anchors are out of scope).
"""

import doctest
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
LINKED_SOURCES = DOCS + [REPO_ROOT / "README.md"]

#: Markdown inline links: [text](target).  Images ![alt](target) match too.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_ids(paths):
    return [str(path.relative_to(REPO_ROOT)) for path in paths]


class TestDocs:
    def test_docs_exist_and_are_linked_from_readme(self):
        names = {path.name for path in DOCS}
        assert {
            "architecture.md", "exploration.md", "scenarios.md", "swarm.md",
            "service.md",
        } <= names
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for name in (
            "architecture.md", "exploration.md", "scenarios.md", "swarm.md",
            "service.md",
        ):
            assert f"docs/{name}" in readme, f"README does not link docs/{name}"

    @pytest.mark.parametrize("path", DOCS, ids=_doc_ids(DOCS))
    def test_doc_code_blocks_pass_doctest(self, path):
        results = doctest.testfile(
            str(path),
            module_relative=False,
            optionflags=doctest.NORMALIZE_WHITESPACE,
            verbose=False,
        )
        assert results.attempted > 0, f"{path.name} has no executable examples"
        assert results.failed == 0, f"{results.failed} doctest failure(s) in {path.name}"

    def test_public_testing_api_docstrings_pass_doctest(self):
        import repro.core.regions
        import repro.testing.coverage
        import repro.testing.explorer
        import repro.testing.parallel
        import repro.testing.scenarios
        import repro.testing.strategies

        attempted = 0
        for module in (
            repro.core.regions,
            repro.testing.coverage,
            repro.testing.explorer,
            repro.testing.parallel,
            repro.testing.scenarios,
            repro.testing.strategies,
        ):
            results = doctest.testmod(module, verbose=False)
            assert results.failed == 0, f"doctest failure(s) in {module.__name__}"
            attempted += results.attempted
        # The docstring pass is part of the contract: losing every example
        # (e.g. a refactor stripping docstrings) should fail loudly.
        assert attempted >= 10

    @pytest.mark.parametrize("path", LINKED_SOURCES, ids=_doc_ids(LINKED_SOURCES))
    def test_intra_repo_links_resolve(self, path):
        text = path.read_text(encoding="utf-8")
        broken = []
        for target in _LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"broken intra-repo link(s) in {path.name}: {broken}"
