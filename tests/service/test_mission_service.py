"""The mission service: streaming, cursors, concurrency, serial parity.

The acceptance bar for the service is *exactness*, not vague liveness:
two concurrent missions must stream their records incrementally over
the cursor API and still produce final reports byte-equal to serial
:class:`~repro.testing.SystematicTester` runs of the same scenario,
seed and budget — including coverage and replay confirmations.
"""

import threading

import pytest

from repro.service import MissionClient, MissionServer
from repro.service.client import (
    decode_report_coverage,
    decode_report_records,
)
from repro.swarm import protocol
from repro.testing import (
    ExhaustiveStrategy,
    RandomStrategy,
    SystematicTester,
    scenario_factory,
)


def _record_keys(records):
    return [
        (
            record.index,
            tuple(record.trail or ()),
            tuple((v.time, v.monitor, v.message) for v in record.violations),
        )
        for record in records
    ]


def _serial(scenario, strategy, *, overrides=None, track_coverage=False):
    return SystematicTester(
        scenario_factory(scenario, **(overrides or {})),
        strategy=strategy,
        track_coverage=track_coverage,
    ).explore()


@pytest.fixture(scope="module")
def server():
    with MissionServer(fleet=2) as running:
        yield running


@pytest.fixture()
def client(server):
    return MissionClient(server.url)


class TestStreaming:
    def test_records_stream_incrementally_and_report_matches_serial(self, client):
        strategy = RandomStrategy(seed=0, max_executions=6)
        mission_id = client.submit(
            "toy-closed-loop",
            strategy=strategy,
            overrides={"broken_ttf": True},
            track_coverage=True,
        )
        events = list(client.events(mission_id))
        types = [event["type"] for event in events]
        assert types[0] == "submitted"
        assert types[-1] == "finished"
        assert types.count("record") == 6
        assert "coverage" in types
        # seqs are dense and monotonic — the cursor contract.
        assert [event["seq"] for event in events] == list(
            range(1, len(events) + 1)
        )

        report = client.result(mission_id)
        serial = _serial(
            "toy-closed-loop",
            RandomStrategy(seed=0, max_executions=6),
            overrides={"broken_ttf": True},
            track_coverage=True,
        )
        assert _record_keys(decode_report_records(report)) == _record_keys(
            serial.executions
        )
        coverage = decode_report_coverage(report)
        assert coverage is not None
        assert coverage.counts == serial.coverage.counts
        assert report["ok"] is False and report["all_confirmed"] is True
        assert report["duplicates"] == 0

    def test_cursor_resume_is_idempotent(self, client):
        mission_id = client.submit(
            "toy-closed-loop", strategy=RandomStrategy(seed=5, max_executions=4)
        )
        full = list(client.events(mission_id))  # drains to "finished"
        assert full[-1]["type"] == "finished"
        middle = full[len(full) // 2]["seq"]
        resumed = list(client.events(mission_id, since=middle))
        assert resumed == full[middle:]
        # Re-reading the whole stream returns the identical event log.
        assert list(client.events(mission_id)) == full

    def test_status_tracks_progress(self, client):
        mission_id = client.submit(
            "toy-closed-loop", strategy=RandomStrategy(seed=2, max_executions=3)
        )
        list(client.events(mission_id))
        status = client.status(mission_id)
        assert status["mission"] == mission_id
        assert status["done"] is True
        assert status["error"] is None
        assert status["records"] == 3
        assert status["last_seq"] >= 5  # submitted + session + records + finished


class TestConcurrentMissions:
    def test_two_missions_interleave_without_bleed(self, client):
        # Different scenarios, one plane, one shared standing fleet.
        specs = {
            "a": dict(
                scenario="toy-closed-loop",
                strategy=RandomStrategy(seed=0, max_executions=8),
                overrides={"broken_ttf": True},
            ),
            "b": dict(
                scenario="drone-surveillance",
                strategy=RandomStrategy(seed=3, max_executions=6),
                overrides={"include_unsafe_position": True},
            ),
        }
        ids = {
            tag: client.submit(
                spec["scenario"],
                strategy=spec["strategy"],
                overrides=spec["overrides"],
                track_coverage=True,
            )
            for tag, spec in specs.items()
        }
        streams = {}

        def drain(tag):
            streams[tag] = list(client.events(ids[tag]))

        threads = [
            threading.Thread(target=drain, args=(tag,), daemon=True) for tag in ids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert set(streams) == {"a", "b"}

        for tag, spec in specs.items():
            report = client.result(ids[tag])
            serial = _serial(
                spec["scenario"],
                RandomStrategy(
                    seed=spec["strategy"].seed,
                    max_executions=spec["strategy"].max_executions,
                ),
                overrides=spec["overrides"],
                track_coverage=True,
            )
            assert _record_keys(decode_report_records(report)) == _record_keys(
                serial.executions
            ), f"mission {tag} diverged from its serial run"
            assert decode_report_coverage(report).counts == serial.coverage.counts
            assert report["duplicates"] == 0  # exactly-once, no cross-bleed
            streamed = [
                event["record"]
                for event in streams[tag]
                if event["type"] == "record"
            ]
            # The stream carries exactly the mission's own executions.
            assert len(streamed) == len(serial.executions)
            assert {r["index"] for r in streamed} == {
                r.index for r in serial.executions
            }

    def test_exhaustive_mission_matches_serial_enumeration(self, client):
        strategy = ExhaustiveStrategy(max_depth=5, max_executions=300)
        report = client.run("toy-closed-loop", strategy=strategy)
        serial = _serial(
            "toy-closed-loop", ExhaustiveStrategy(max_depth=5, max_executions=300)
        )
        assert _record_keys(decode_report_records(report)) == _record_keys(
            serial.executions
        )
        assert len(report["records"]) > 1
        assert report["ok"] is True


class TestPopulationMissions:
    def test_population_mission_matches_serial_and_surfaces_stats(self, client):
        report = client.run(
            "drone-surveillance",
            strategy=RandomStrategy(seed=6, max_executions=20),
            overrides={"include_unsafe_position": True},
            population_size=32,
            track_coverage=True,
        )
        serial = _serial(
            "drone-surveillance",
            RandomStrategy(seed=6, max_executions=20),
            overrides={"include_unsafe_position": True},
            track_coverage=True,
        )
        assert _record_keys(decode_report_records(report)) == _record_keys(
            serial.executions
        )
        assert decode_report_coverage(report).counts == serial.coverage.counts
        # The population plane's fleet-wide counters ride the report.
        stats = report["population_stats"]
        assert stats["executions"] == 20
        assert stats["live_runs"] + stats["compacted"] == stats["executions"]
        assert stats["pickle_fallbacks"] == 0
        # The full PopulationStats counter set crosses the wire, so
        # clients can see how the work was elided (or that it wasn't).
        for key in ("snapshots_taken", "restores", "delta_snapshots",
                    "delta_restores", "replayed_choices", "live_choices"):
            assert key in stats

    def test_plain_missions_report_empty_population_stats(self, client):
        report = client.run(
            "toy-closed-loop", strategy=RandomStrategy(seed=1, max_executions=3)
        )
        assert report["population_stats"] == {}


class TestErrorPaths:
    def test_unknown_scenario_fails_at_submission(self, client):
        with pytest.raises(protocol.ProtocolError, match="bad mission workload"):
            client.submit(
                "no-such-scenario", strategy=RandomStrategy(max_executions=1)
            )

    def test_malformed_strategy_fails_at_submission(self, client):
        with pytest.raises(protocol.ProtocolError, match="strategy"):
            client.submit("toy-closed-loop", strategy={"kind": "quantum"})

    def test_result_before_done_is_an_error(self, client):
        mission_id = client.submit(
            "toy-closed-loop", strategy=RandomStrategy(seed=9, max_executions=4)
        )
        # The mission may legitimately finish fast; only assert when caught mid-run.
        status = client.status(mission_id)
        if not status["done"]:
            with pytest.raises(protocol.ProtocolError, match="still running"):
                client.result(mission_id)
        list(client.events(mission_id))
        assert client.result(mission_id)["mission"] == mission_id

    def test_unknown_mission_everywhere(self, client):
        with pytest.raises(protocol.ProtocolError, match="unknown mission"):
            client.status("m999999")
        with pytest.raises(protocol.ProtocolError, match="unknown mission"):
            client.result("m999999")
        with pytest.raises(protocol.ProtocolError, match="unknown mission"):
            list(client.events("m999999"))

    def test_drone_routes_still_served_by_the_same_server(self, server, client):
        from repro.swarm.drone import get_json

        status = get_json(server.url, "/api/v1/status")
        assert status["protocol"] == protocol.PROTOCOL_VERSION
        assert any(
            drone_id.startswith("service-drone-") for drone_id in status["drones"]
        )


class TestStrategyCodec:
    def test_round_trips(self):
        random = RandomStrategy(seed=7, max_executions=42)
        decoded = protocol.decode_strategy(protocol.encode_strategy(random))
        assert (decoded.seed, decoded.max_executions) == (7, 42)
        exhaustive = ExhaustiveStrategy(max_depth=4, max_executions=99)
        decoded = protocol.decode_strategy(protocol.encode_strategy(exhaustive))
        assert (decoded.max_depth, decoded.max_executions) == (4, 99)

    def test_rejects_unknown_kinds(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_strategy({"kind": "quantum", "max_executions": 1})
        with pytest.raises(protocol.ProtocolError):
            protocol.encode_strategy(object())
