"""Tests for workspaces and the workspace factory functions."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    AABB,
    Vec3,
    Workspace,
    corridor_workspace,
    empty_workspace,
    grid_city_workspace,
    min_clearance_along,
)


@pytest.fixture
def pillar_workspace() -> Workspace:
    workspace = empty_workspace(side=20.0, ceiling=10.0, name="pillar")
    workspace.add_obstacle(AABB.from_footprint(9.0, 9.0, 2.0, 2.0, 8.0))
    return workspace


class TestCollisionQueries:
    def test_in_bounds(self, pillar_workspace):
        assert pillar_workspace.in_bounds(Vec3(1, 1, 1))
        assert not pillar_workspace.in_bounds(Vec3(-1, 1, 1))
        assert not pillar_workspace.in_bounds(Vec3(1, 1, 11))

    def test_in_obstacle(self, pillar_workspace):
        assert pillar_workspace.in_obstacle(Vec3(10, 10, 2))
        assert not pillar_workspace.in_obstacle(Vec3(2, 2, 2))
        assert pillar_workspace.in_obstacle(Vec3(8.5, 10, 2), margin=1.0)

    def test_is_free(self, pillar_workspace):
        assert pillar_workspace.is_free(Vec3(2, 2, 2))
        assert not pillar_workspace.is_free(Vec3(10, 10, 2))
        assert not pillar_workspace.is_free(Vec3(25, 2, 2))

    def test_segment_is_free(self, pillar_workspace):
        assert pillar_workspace.segment_is_free(Vec3(2, 2, 2), Vec3(2, 18, 2))
        assert not pillar_workspace.segment_is_free(Vec3(2, 10, 2), Vec3(18, 10, 2))

    def test_segment_with_endpoint_outside(self, pillar_workspace):
        assert not pillar_workspace.segment_is_free(Vec3(2, 2, 2), Vec3(25, 2, 2))

    def test_clearance_excludes_floor(self, pillar_workspace):
        # At 2 m altitude, far from walls and the pillar, the clearance is
        # governed by the lateral distance, not the 2 m to the ground.
        assert pillar_workspace.clearance(Vec3(5, 5, 2.0)) > 2.0

    def test_clearance_near_obstacle(self, pillar_workspace):
        assert pillar_workspace.clearance(Vec3(8.0, 10.0, 2.0)) == pytest.approx(1.0)

    def test_distance_to_boundary_with_floor(self, pillar_workspace):
        assert pillar_workspace.distance_to_boundary(Vec3(5, 5, 2.0), include_floor=True) == pytest.approx(2.0)

    def test_obstacle_outside_bounds_rejected(self, pillar_workspace):
        with pytest.raises(ValueError):
            pillar_workspace.add_obstacle(AABB.from_footprint(100.0, 100.0, 1.0, 1.0, 1.0))

    def test_with_margin_inflates_all_obstacles(self, pillar_workspace):
        inflated = pillar_workspace.with_margin(1.0)
        assert inflated.in_obstacle(Vec3(8.5, 10, 2))
        assert not pillar_workspace.in_obstacle(Vec3(8.5, 10, 2))

    def test_min_clearance_along(self, pillar_workspace):
        points = [Vec3(2, 2, 2), Vec3(8.0, 10.0, 2.0)]
        assert min_clearance_along(points, pillar_workspace) == pytest.approx(1.0)


class TestSampling:
    def test_random_free_point_respects_margin(self, pillar_workspace):
        rng = random.Random(1)
        for _ in range(30):
            point = pillar_workspace.random_free_point(rng, margin=2.0, altitude_range=(2.0, 2.0))
            assert pillar_workspace.clearance(point) >= 2.0
            assert point.z == pytest.approx(2.0)

    def test_random_free_point_gives_up(self):
        workspace = empty_workspace(side=4.0, ceiling=3.0)
        rng = random.Random(0)
        with pytest.raises(RuntimeError):
            workspace.random_free_point(rng, margin=100.0, max_tries=20)

    def test_clamp(self, pillar_workspace):
        assert pillar_workspace.clamp(Vec3(-5, 5, 5)) == Vec3(0, 5, 5)


class TestFactories:
    def test_city_has_buildings_and_free_streets(self):
        city = grid_city_workspace(building_rows=2, building_cols=2)
        assert len(city.obstacles) == 4
        assert city.is_free(Vec3(25.0, 25.0, 2.0))

    def test_city_rejects_oversized_buildings(self):
        with pytest.raises(ValueError):
            grid_city_workspace(building_size=50.0)

    def test_city_requires_positive_grid(self):
        with pytest.raises(ValueError):
            grid_city_workspace(building_rows=0)

    def test_corridor_with_pillars(self):
        corridor = corridor_workspace(pillar_positions=(10.0, 20.0))
        assert len(corridor.obstacles) == 2
        assert not corridor.is_free(Vec3(10.0, 5.0, 2.0))

    def test_empty_workspace_has_no_obstacles(self):
        assert empty_workspace().obstacles == []


class TestWorkspaceProperties:
    @given(
        x=st.floats(min_value=0.5, max_value=19.5, allow_nan=False),
        y=st.floats(min_value=0.5, max_value=19.5, allow_nan=False),
        margin=st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_clearance_bounds_obstacle_margin_checks(self, x, y, margin):
        workspace = empty_workspace(side=20.0, ceiling=10.0)
        workspace.add_obstacle(AABB.from_footprint(9.0, 9.0, 2.0, 2.0, 8.0))
        point = Vec3(x, y, 2.0)
        if not workspace.is_free(point):
            return
        # Being inside the per-axis margin-inflated obstacle box bounds the
        # Euclidean obstacle distance by sqrt(3)·margin (box corners), so a
        # point with larger clearance can never be flagged by the margin check.
        if workspace.in_obstacle(point, margin=margin):
            assert workspace.distance_to_nearest_obstacle(point) <= margin * (3 ** 0.5) + 1e-9
