"""Tests for trajectories, reference trajectories, and tubes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    AABB,
    ReferenceTrajectory,
    Trajectory,
    Tube,
    Vec3,
    empty_workspace,
    figure_eight,
    mission_waypoint_square,
)


class TestTrajectory:
    def test_append_requires_time_order(self):
        trajectory = Trajectory()
        trajectory.append(0.0, Vec3(0, 0, 0))
        trajectory.append(1.0, Vec3(1, 0, 0))
        with pytest.raises(ValueError):
            trajectory.append(0.5, Vec3(2, 0, 0))

    def test_duration_and_length(self):
        trajectory = Trajectory()
        trajectory.append(0.0, Vec3(0, 0, 0))
        trajectory.append(1.0, Vec3(3, 4, 0))
        assert trajectory.duration == pytest.approx(1.0)
        assert trajectory.path_length() == pytest.approx(5.0)
        assert len(trajectory) == 2

    def test_position_interpolation(self):
        trajectory = Trajectory()
        trajectory.append(0.0, Vec3(0, 0, 0))
        trajectory.append(2.0, Vec3(2, 0, 0))
        assert trajectory.position_at(1.0) == Vec3(1, 0, 0)
        assert trajectory.position_at(-1.0) == Vec3(0, 0, 0)
        assert trajectory.position_at(5.0) == Vec3(2, 0, 0)

    def test_position_of_empty_trajectory_raises(self):
        with pytest.raises(ValueError):
            Trajectory().position_at(0.0)

    def test_min_clearance(self):
        workspace = empty_workspace(side=10.0, ceiling=8.0)
        workspace.add_obstacle(AABB.from_footprint(4.0, 4.0, 2.0, 2.0, 6.0))
        trajectory = Trajectory()
        trajectory.append(0.0, Vec3(1, 5, 2))
        trajectory.append(1.0, Vec3(3.5, 5, 2))
        assert trajectory.min_clearance(workspace) == pytest.approx(0.5)

    def test_max_deviation_from_reference(self):
        reference = ReferenceTrajectory((Vec3(0, 0, 0), Vec3(10, 0, 0)))
        trajectory = Trajectory()
        trajectory.append(0.0, Vec3(0, 0, 0))
        trajectory.append(1.0, Vec3(5, 2, 0))
        assert trajectory.max_deviation_from(reference) == pytest.approx(2.0)


class TestReferenceTrajectory:
    def test_requires_waypoints(self):
        with pytest.raises(ValueError):
            ReferenceTrajectory(())

    def test_length(self):
        reference = ReferenceTrajectory((Vec3(0, 0, 0), Vec3(3, 0, 0), Vec3(3, 4, 0)))
        assert reference.length() == pytest.approx(7.0)

    def test_distance_and_closest_point(self):
        reference = ReferenceTrajectory((Vec3(0, 0, 0), Vec3(10, 0, 0)))
        assert reference.distance_to(Vec3(5, 3, 0)) == pytest.approx(3.0)
        assert reference.closest_point(Vec3(5, 3, 0)) == Vec3(5, 0, 0)

    def test_point_at_fraction(self):
        reference = ReferenceTrajectory((Vec3(0, 0, 0), Vec3(10, 0, 0)))
        assert reference.point_at_fraction(0.5) == Vec3(5, 0, 0)
        assert reference.point_at_fraction(-1.0) == Vec3(0, 0, 0)
        assert reference.point_at_fraction(2.0) == Vec3(10, 0, 0)

    def test_advance_from(self):
        reference = ReferenceTrajectory((Vec3(0, 0, 0), Vec3(10, 0, 0), Vec3(10, 10, 0)))
        carrot = reference.advance_from(Vec3(4, 1, 0), 3.0)
        assert carrot == Vec3(7, 0, 0)
        # Advancing past the end clamps to the final waypoint.
        assert reference.advance_from(Vec3(10, 9.5, 0), 5.0) == Vec3(10, 10, 0)
        with pytest.raises(ValueError):
            reference.advance_from(Vec3(0, 0, 0), -1.0)

    def test_collision_check(self):
        workspace = empty_workspace(side=10.0, ceiling=8.0)
        workspace.add_obstacle(AABB.from_footprint(4.0, 4.0, 2.0, 2.0, 6.0))
        blocked = ReferenceTrajectory((Vec3(1, 5, 2), Vec3(9, 5, 2)))
        clear = ReferenceTrajectory((Vec3(1, 1, 2), Vec3(9, 1, 2)))
        assert not blocked.is_collision_free(workspace)
        assert clear.is_collision_free(workspace)

    def test_single_waypoint_collision_check(self):
        workspace = empty_workspace(side=10.0, ceiling=8.0)
        assert ReferenceTrajectory((Vec3(1, 1, 2),)).is_collision_free(workspace)


class TestTube:
    def test_contains(self):
        tube = Tube(ReferenceTrajectory((Vec3(0, 0, 0), Vec3(10, 0, 0))), radius=2.0)
        assert tube.contains(Vec3(5, 1.5, 0))
        assert not tube.contains(Vec3(5, 2.5, 0))

    def test_shrink(self):
        tube = Tube(ReferenceTrajectory((Vec3(0, 0, 0), Vec3(10, 0, 0))), radius=2.0)
        assert tube.shrink(1.0).radius == pytest.approx(1.0)
        with pytest.raises(ValueError):
            tube.shrink(3.0)

    def test_clearance_sign(self):
        tube = Tube(ReferenceTrajectory((Vec3(0, 0, 0), Vec3(10, 0, 0))), radius=2.0)
        assert tube.clearance(Vec3(5, 1, 0)) > 0
        assert tube.clearance(Vec3(5, 3, 0)) < 0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Tube(ReferenceTrajectory((Vec3(0, 0, 0),)), radius=-1.0)


class TestMissionShapes:
    def test_waypoint_square(self):
        g1, g2, g3, g4 = mission_waypoint_square(Vec3(5, 5, 0), side=4.0, altitude=2.0)
        assert g1.distance_to(g2) == pytest.approx(4.0)
        assert g2.distance_to(g3) == pytest.approx(4.0)
        assert all(g.z == 2.0 for g in (g1, g2, g3, g4))

    def test_figure_eight_closed_loop(self):
        loop = figure_eight(Vec3(0, 0, 0), radius=5.0, altitude=2.0, points=16)
        assert loop[0] == loop[-1]
        assert len(loop) == 17
        with pytest.raises(ValueError):
            figure_eight(Vec3(), 5.0, 2.0, points=2)


class TestReferenceProperties:
    @given(
        xs=st.lists(st.floats(min_value=-20, max_value=20, allow_nan=False), min_size=2, max_size=6),
        probe_x=st.floats(min_value=-20, max_value=20, allow_nan=False),
        probe_y=st.floats(min_value=-20, max_value=20, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_closest_point_realises_the_distance(self, xs, probe_x, probe_y):
        waypoints = tuple(Vec3(x, float(i), 0.0) for i, x in enumerate(xs))
        reference = ReferenceTrajectory(waypoints)
        probe = Vec3(probe_x, probe_y, 0.0)
        closest = reference.closest_point(probe)
        assert probe.distance_to(closest) == pytest.approx(reference.distance_to(probe), abs=1e-6)
