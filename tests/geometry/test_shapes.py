"""Unit and property tests for boxes and spheres."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, Sphere, Vec3, first_box_containing, min_distance_to_boxes

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
sizes = st.floats(min_value=0.1, max_value=20.0, allow_nan=False)


def box_strategy():
    return st.builds(
        lambda x, y, z, w, d, h: AABB(Vec3(x, y, z), Vec3(x + w, y + d, z + h)),
        coords, coords, coords, sizes, sizes, sizes,
    )


class TestAABB:
    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            AABB(Vec3(1, 0, 0), Vec3(0, 1, 1))

    def test_from_center_size(self):
        box = AABB.from_center_size(Vec3(0, 0, 0), Vec3(2, 4, 6))
        assert box.lo == Vec3(-1, -2, -3)
        assert box.hi == Vec3(1, 2, 3)

    def test_from_footprint(self):
        box = AABB.from_footprint(1.0, 2.0, 3.0, 4.0, 5.0)
        assert box.lo == Vec3(1, 2, 0)
        assert box.hi == Vec3(4, 6, 5)

    def test_contains_with_margin(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert box.contains(Vec3(0.5, 0.5, 0.5))
        assert not box.contains(Vec3(1.2, 0.5, 0.5))
        assert box.contains(Vec3(1.2, 0.5, 0.5), margin=0.3)

    def test_inflate(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)).inflate(0.5)
        assert box.lo == Vec3(-0.5, -0.5, -0.5)
        with pytest.raises(ValueError):
            AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)).inflate(-2.0)

    def test_intersects(self):
        a = AABB(Vec3(0, 0, 0), Vec3(2, 2, 2))
        b = AABB(Vec3(1, 1, 1), Vec3(3, 3, 3))
        c = AABB(Vec3(5, 5, 5), Vec3(6, 6, 6))
        assert a.intersects(b) and b.intersects(a)
        assert not a.intersects(c)

    def test_distance_and_closest_point(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert box.distance_to_point(Vec3(0.5, 0.5, 0.5)) == 0.0
        assert box.distance_to_point(Vec3(2.0, 0.5, 0.5)) == pytest.approx(1.0)
        assert box.closest_point(Vec3(2.0, 2.0, 0.5)) == Vec3(1, 1, 0.5)

    def test_segment_intersects(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert box.segment_intersects(Vec3(-1, 0.5, 0.5), Vec3(2, 0.5, 0.5))
        assert not box.segment_intersects(Vec3(-1, 2, 0.5), Vec3(2, 2, 0.5))
        # Margin makes a near-miss count as a hit.
        assert box.segment_intersects(Vec3(-1, 1.2, 0.5), Vec3(2, 1.2, 0.5), margin=0.3)

    def test_segment_parallel_outside_slab(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        assert not box.segment_intersects(Vec3(2, -1, 0.5), Vec3(2, 2, 0.5))

    def test_union_and_corners(self):
        a = AABB(Vec3(0, 0, 0), Vec3(1, 1, 1))
        b = AABB(Vec3(2, 2, 2), Vec3(3, 3, 3))
        union = a.union(b)
        assert union.lo == Vec3(0, 0, 0) and union.hi == Vec3(3, 3, 3)
        assert len(a.corners()) == 8

    def test_center_size_volume(self):
        box = AABB(Vec3(0, 0, 0), Vec3(2, 4, 6))
        assert box.center == Vec3(1, 2, 3)
        assert box.size == Vec3(2, 4, 6)
        assert box.volume == pytest.approx(48.0)

    def test_random_point_is_inside(self):
        box = AABB(Vec3(0, 0, 0), Vec3(1, 2, 3))
        rng = random.Random(0)
        for _ in range(20):
            assert box.contains(box.random_point(rng))


class TestSphere:
    def test_contains_and_distance(self):
        sphere = Sphere(Vec3(0, 0, 0), 2.0)
        assert sphere.contains(Vec3(1, 1, 0))
        assert not sphere.contains(Vec3(3, 0, 0))
        assert sphere.distance_to_point(Vec3(3, 0, 0)) == pytest.approx(1.0)
        assert sphere.distance_to_point(Vec3(1, 0, 0)) == 0.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            Sphere(Vec3(), -1.0)

    def test_bounding_box(self):
        box = Sphere(Vec3(1, 1, 1), 1.0).bounding_box()
        assert box.lo == Vec3(0, 0, 0) and box.hi == Vec3(2, 2, 2)


class TestHelpers:
    def test_min_distance_to_boxes(self):
        boxes = [AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)), AABB(Vec3(5, 0, 0), Vec3(6, 1, 1))]
        assert min_distance_to_boxes(Vec3(4.5, 0.5, 0.5), boxes) == pytest.approx(0.5)
        assert min_distance_to_boxes(Vec3(0, 0, 0), []) == float("inf")

    def test_first_box_containing(self):
        boxes = [AABB(Vec3(0, 0, 0), Vec3(1, 1, 1)), AABB(Vec3(5, 0, 0), Vec3(6, 1, 1))]
        assert first_box_containing(Vec3(5.5, 0.5, 0.5), boxes) is boxes[1]
        assert first_box_containing(Vec3(3.0, 0.5, 0.5), boxes) is None


class TestBoxProperties:
    @given(box=box_strategy(), margin=st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_inflation_preserves_containment(self, box, margin):
        assert box.inflate(margin).contains(box.center)

    @given(box=box_strategy())
    @settings(max_examples=60, deadline=None)
    def test_closest_point_is_inside_box(self, box):
        point = Vec3(100.0, 100.0, 100.0)
        assert box.contains(box.closest_point(point), margin=1e-9)

    @given(box=box_strategy(), x=coords, y=coords, z=coords)
    @settings(max_examples=60, deadline=None)
    def test_distance_zero_iff_contained(self, box, x, y, z):
        point = Vec3(x, y, z)
        if box.contains(point):
            assert box.distance_to_point(point) == 0.0
        else:
            # Squaring sub-normal offsets can underflow to exactly 0.0, so
            # allow "outside but within 1e-9" as a zero-distance case.
            assert box.distance_to_point(point) > 0.0 or box.contains(point, margin=1e-9)
