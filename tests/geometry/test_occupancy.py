"""Tests for the 2-D occupancy grid."""

import numpy as np
import pytest

from repro.geometry import AABB, OccupancyGrid, Vec3, empty_workspace


@pytest.fixture
def grid_with_pillar():
    workspace = empty_workspace(side=10.0, ceiling=8.0)
    workspace.add_obstacle(AABB.from_footprint(4.0, 4.0, 2.0, 2.0, 6.0))
    return OccupancyGrid.from_workspace(workspace, resolution=0.5, altitude=2.0)


class TestConstruction:
    def test_shape_matches_workspace(self, grid_with_pillar):
        assert grid_with_pillar.shape == (20, 20)

    def test_resolution_must_be_positive(self):
        workspace = empty_workspace(side=4.0)
        with pytest.raises(ValueError):
            OccupancyGrid.from_workspace(workspace, resolution=0.0)

    def test_obstacle_cells_marked(self, grid_with_pillar):
        assert grid_with_pillar.is_occupied(Vec3(5.0, 5.0, 2.0))
        assert not grid_with_pillar.is_occupied(Vec3(1.0, 1.0, 2.0))

    def test_inflation_marks_neighbouring_cells(self):
        workspace = empty_workspace(side=10.0, ceiling=8.0)
        workspace.add_obstacle(AABB.from_footprint(4.0, 4.0, 2.0, 2.0, 6.0))
        plain = OccupancyGrid.from_workspace(workspace, resolution=0.5, altitude=2.0)
        inflated = OccupancyGrid.from_workspace(workspace, resolution=0.5, inflate=1.0, altitude=2.0)
        assert inflated.occupied.sum() > plain.occupied.sum()

    def test_non_2d_array_rejected(self):
        with pytest.raises(ValueError):
            OccupancyGrid(0.0, 0.0, 0.5, np.zeros((2, 2, 2), dtype=bool))


class TestIndexing:
    def test_world_cell_round_trip(self, grid_with_pillar):
        cell = grid_with_pillar.world_to_cell(Vec3(3.3, 7.7, 2.0))
        back = grid_with_pillar.cell_to_world(cell, altitude=2.0)
        assert abs(back.x - 3.3) <= 0.5 and abs(back.y - 7.7) <= 0.5

    def test_out_of_grid_is_occupied(self, grid_with_pillar):
        assert grid_with_pillar.is_occupied(Vec3(-5.0, 0.0, 2.0))
        assert grid_with_pillar.is_occupied_cell((999, 0))

    def test_neighbors_4_and_8(self, grid_with_pillar):
        assert len(grid_with_pillar.neighbors((5, 5), diagonal=False)) == 4
        assert len(grid_with_pillar.neighbors((5, 5), diagonal=True)) == 8
        assert len(grid_with_pillar.neighbors((0, 0), diagonal=True)) == 3

    def test_free_cells_iteration(self, grid_with_pillar):
        free = list(grid_with_pillar.free_cells())
        assert all(not grid_with_pillar.occupied[cell] for cell in free)
        assert len(free) == int((~grid_with_pillar.occupied).sum())


class TestDistanceTransform:
    def test_distance_zero_on_obstacles(self, grid_with_pillar):
        dist = grid_with_pillar.distance_to_occupied()
        cell = grid_with_pillar.world_to_cell(Vec3(5.0, 5.0, 2.0))
        assert dist[cell] == 0.0

    def test_distance_grows_away_from_obstacles(self, grid_with_pillar):
        dist = grid_with_pillar.distance_to_occupied()
        near = grid_with_pillar.world_to_cell(Vec3(3.4, 5.0, 2.0))
        far = grid_with_pillar.world_to_cell(Vec3(1.0, 1.0, 2.0))
        assert dist[far] > dist[near] > 0.0

    def test_distance_roughly_matches_metric_distance(self, grid_with_pillar):
        dist = grid_with_pillar.distance_to_occupied()
        cell = grid_with_pillar.world_to_cell(Vec3(1.0, 5.0, 2.0))
        # True distance from x=1.0 to the obstacle face at x=4.0 is 3.0; the
        # octile-metric brushfire may overestimate slightly.
        assert dist[cell] == pytest.approx(3.0, abs=0.8)

    def test_empty_grid_distance_is_infinite(self):
        grid = OccupancyGrid.from_workspace(empty_workspace(side=5.0), resolution=1.0)
        dist = grid.distance_to_occupied()
        assert np.isinf(dist).all()

    def test_inflated_grid(self, grid_with_pillar):
        inflated = grid_with_pillar.inflated(1.0)
        assert inflated.occupied.sum() > grid_with_pillar.occupied.sum()
        with pytest.raises(ValueError):
            grid_with_pillar.inflated(-1.0)

    def test_occupancy_fraction(self, grid_with_pillar):
        fraction = grid_with_pillar.occupancy_fraction()
        assert 0.0 < fraction < 0.2
