"""Property-style equivalence tests for the batched safety-query plane.

The batching contract (see :mod:`repro.geometry.shapes`) promises that
every ``*_batch`` query evaluates the same floating-point expressions as
its scalar counterpart, so answers must match *bit-for-bit* — not just
within a tolerance.  These tests check that on randomized workspaces, and
check the conservativeness invariant of the :class:`ClearanceField` memo.
"""

import math
import random

import numpy as np
import pytest

from repro.geometry import (
    AABB,
    ClearanceField,
    OccupancyGrid,
    Vec3,
    empty_workspace,
    grid_city_workspace,
    points_as_array,
)


def random_workspace(seed: int, obstacles: int = 6):
    rng = random.Random(seed)
    workspace = empty_workspace(side=30.0, ceiling=10.0, name=f"random-{seed}")
    for _ in range(obstacles):
        workspace.add_obstacle(
            AABB.from_footprint(
                x=rng.uniform(0.0, 24.0),
                y=rng.uniform(0.0, 24.0),
                width=rng.uniform(0.5, 5.0),
                depth=rng.uniform(0.5, 5.0),
                height=rng.uniform(2.0, 9.0),
            )
        )
    return workspace


def random_points(workspace, seed: int, count: int = 400):
    rng = random.Random(seed + 1)
    # Include points inside obstacles, outside the bounds, and on the floor.
    pts = [workspace.bounds.random_point(rng) for _ in range(count)]
    pts += [Vec3(-1.0, 5.0, 2.0), Vec3(50.0, 50.0, 50.0), Vec3(3.0, 3.0, 0.0)]
    for obstacle in workspace.obstacles[:3]:
        pts.append(obstacle.center)
    return pts


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
class TestBatchScalarBitEquality:
    def test_clearance_batch_matches_scalar(self, seed):
        workspace = random_workspace(seed)
        pts = random_points(workspace, seed)
        scalar = np.array([workspace.clearance(p) for p in pts])
        batch = workspace.clearance_batch(points_as_array(pts))
        assert (scalar == batch).all(), "clearance_batch must be bit-identical"

    def test_membership_batches_match_scalar(self, seed):
        workspace = random_workspace(seed)
        pts = random_points(workspace, seed)
        arr = points_as_array(pts)
        for margin in (0.0, 0.35):
            assert (
                np.array([workspace.in_bounds(p, margin=margin) for p in pts])
                == workspace.in_bounds_batch(arr, margin=margin)
            ).all()
            assert (
                np.array([workspace.in_obstacle(p, margin=margin) for p in pts])
                == workspace.in_obstacle_batch(arr, margin=margin)
            ).all()
            assert (
                np.array([workspace.is_free(p, margin=margin) for p in pts])
                == workspace.is_free_batch(arr, margin=margin)
            ).all()

    def test_segment_batch_matches_scalar(self, seed):
        workspace = random_workspace(seed)
        pts = random_points(workspace, seed, count=120)
        arr = points_as_array(pts)
        for margin in (0.0, 0.4):
            scalar = np.array(
                [
                    workspace.segment_is_free(a, b, margin=margin)
                    for a, b in zip(pts[:-1], pts[1:])
                ]
            )
            batch = workspace.segments_free_batch(arr[:-1], arr[1:], margin=margin)
            assert (scalar == batch).all()

    def test_occupancy_build_matches_scalar(self, seed):
        workspace = random_workspace(seed)
        batch = OccupancyGrid.from_workspace(workspace, resolution=0.5, inflate=0.3)
        scalar = OccupancyGrid._from_workspace_scalar(workspace, resolution=0.5, inflate=0.3)
        assert batch.shape == scalar.shape
        assert (batch.occupied == scalar.occupied).all(), (
            "vectorised rasterisation must mark exactly the scalar loop's cells"
        )

    def test_distance_transform_matches_dijkstra(self, seed):
        workspace = random_workspace(seed)
        grid = OccupancyGrid.from_workspace(workspace, resolution=0.5)
        chamfer = grid.distance_to_occupied()
        dijkstra = grid._distance_to_occupied_dijkstra()
        # Same metric, different summation order: equal up to fp rounding.
        assert np.allclose(chamfer, dijkstra, rtol=1e-9, atol=1e-9)

    def test_clearance_field_is_conservative(self, seed):
        workspace = random_workspace(seed)
        field = ClearanceField(workspace, resolution=0.5)
        for p in random_points(workspace, seed, count=200):
            assert field.lower_bound(p) <= workspace.clearance(p), (
                "cached bounds must never exceed the true clearance"
            )

    def test_clearance_field_threshold_queries_are_exact(self, seed):
        workspace = random_workspace(seed)
        field = ClearanceField(workspace, resolution=0.5)
        rng = random.Random(seed + 2)
        for p in random_points(workspace, seed, count=200):
            threshold = rng.uniform(-1.0, 8.0)
            clearance = workspace.clearance(p)
            assert field.exceeds(p, threshold) == (clearance > threshold)
            assert field.exceeds(p, threshold, strict=False) == (clearance >= threshold)
            assert field.at_most(p, threshold) == (clearance <= threshold)

    def test_lower_bound_batch_matches_scalar(self, seed):
        workspace = random_workspace(seed)
        pts = random_points(workspace, seed, count=150)
        batched_field = ClearanceField(workspace, resolution=0.5)
        scalar_field = ClearanceField(workspace, resolution=0.5)
        batch = batched_field.lower_bound_batch(points_as_array(pts))
        scalar = np.array([scalar_field.lower_bound(p) for p in pts])
        assert (batch == scalar).all()


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
class TestDenseClearanceGrid:
    """The densified whole-workspace grid must stay bit-identical to the lazy memo."""

    def test_dense_threshold_decisions_bit_identical_to_lazy(self, seed):
        workspace = random_workspace(seed)
        dense = ClearanceField(workspace, resolution=0.5)
        lazy = ClearanceField(workspace, resolution=0.5)
        assert dense.densify() == dense.dense_cells > 0
        rng = random.Random(seed + 3)
        for p in random_points(workspace, seed, count=200):
            threshold = rng.uniform(-1.0, 8.0)
            assert dense.lower_bound(p) == lazy.lower_bound(p)
            assert dense.exceeds(p, threshold) == lazy.exceeds(p, threshold)
            assert dense.exceeds(p, threshold, strict=False) == lazy.exceeds(
                p, threshold, strict=False
            )
            assert dense.at_most(p, threshold) == lazy.at_most(p, threshold)
            for margin in (0.0, 0.3):
                decided = dense.decides_above(p, threshold, margin=margin)
                assert decided == lazy.decides_above(p, threshold, margin=margin)
                if decided:  # a True answer is a sound one-sided proof
                    assert workspace.clearance(p) - margin > threshold
        assert dense.stats.dense_hits > 0
        assert lazy.stats.dense_hits == 0

    def test_dense_lower_bound_batch_matches_lazy(self, seed):
        workspace = random_workspace(seed)
        dense = ClearanceField(workspace, resolution=0.5)
        lazy = ClearanceField(workspace, resolution=0.5)
        dense.densify()
        # random_points includes rows outside the workspace bounds, which
        # with padding=0 land off the dense grid → the lazy fallback rows.
        pts = points_as_array(random_points(workspace, seed, count=150))
        assert (dense.lower_bound_batch(pts) == lazy.lower_bound_batch(pts)).all()
        assert 0 < dense.stats.dense_hits < len(pts)  # mixed on-/off-grid batch

    def test_off_grid_points_fall_back_to_the_lazy_path(self, seed):
        workspace = random_workspace(seed)
        field = ClearanceField(workspace, resolution=0.5)
        field.densify(padding=0.0)
        outside = Vec3(200.0, 200.0, 200.0)
        before = field.stats.dense_hits
        assert field.lower_bound(outside) <= workspace.clearance(outside)
        assert field.stats.dense_hits == before  # served from the lazy dict
        assert len(field) == 1  # the off-grid cell was memoised lazily

    def test_add_obstacle_drops_the_dense_grid(self, seed):
        workspace = random_workspace(seed)
        field = ClearanceField(workspace, resolution=0.5)
        field.densify()
        assert field.dense_cells > 0
        inside = Vec3(15.0, 15.0, 2.0)
        field.exceeds(inside, 0.0)  # warm the grid path
        workspace.add_obstacle(AABB.from_footprint(14.0, 14.0, 2.0, 2.0, 5.0))
        # The stale grid must not answer for the mutated workspace.
        assert field.exceeds(inside, 0.0) == (workspace.clearance(inside) > 0.0)
        assert not field.exceeds(inside, 0.0)
        assert field.dense_cells == 0  # dropped, not silently reused

    def test_densify_validates_its_inputs(self, seed):
        field = ClearanceField(random_workspace(seed), resolution=0.5)
        with pytest.raises(ValueError):
            field.densify(padding=-1.0)
        with pytest.raises(ValueError, match="dense clearance grid"):
            field.densify(max_cells=10)


class TestClearanceFieldBookkeeping:
    def test_decisive_queries_skip_exact_computation(self):
        workspace = grid_city_workspace()
        field = ClearanceField(workspace, resolution=0.5)
        center = Vec3(25.0, 3.0, 2.0)  # mid-street, metres of clearance
        assert field.exceeds(center, 0.05)
        assert field.stats.decisive == 1
        assert field.stats.exact_fallbacks == 0
        # Right next to a building the bound cannot decide: exact fallback.
        wall = workspace.obstacles[0].center.with_z(2.0)
        field.exceeds(wall, 0.05)
        assert field.stats.exact_fallbacks == 1

    def test_workspace_caches_and_invalidates_field(self):
        workspace = empty_workspace(side=10.0)
        field = workspace.clearance_field()
        assert workspace.clearance_field() is field
        workspace.add_obstacle(AABB.from_footprint(4.0, 4.0, 1.0, 1.0, 5.0))
        rebuilt = workspace.clearance_field()
        assert rebuilt is not field
        point = Vec3(4.2, 4.2, 2.0)
        assert rebuilt.at_most(point, 0.0) == (workspace.clearance(point) <= 0.0)

    def test_field_resolution_validated(self):
        with pytest.raises(ValueError):
            ClearanceField(empty_workspace(), resolution=0.0)

    def test_stale_field_reference_stays_sound_after_add_obstacle(self):
        # Callers capture the field into closures at build time; a later
        # add_obstacle must invalidate those cached bounds too, or the
        # monitors would silently declare points inside the new obstacle
        # clear.
        workspace = empty_workspace(side=10.0)
        field = workspace.clearance_field()
        inside = Vec3(5.0, 5.0, 2.0)
        assert field.exceeds(inside, 0.0)  # warms the cell, clearly free
        workspace.add_obstacle(AABB.from_footprint(4.0, 4.0, 2.0, 2.0, 5.0))
        assert field.lower_bound(inside) <= workspace.clearance(inside)
        assert field.exceeds(inside, 0.0) == (workspace.clearance(inside) > 0.0)
        assert not field.exceeds(inside, 0.0)  # it is inside the new box
