"""Unit and property tests for the 3-D vector type."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    Vec3,
    closest_point_on_segment,
    distance_point_to_polyline,
    distance_point_to_segment,
)

finite = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)
vectors = st.builds(Vec3, finite, finite, finite)


class TestArithmetic:
    def test_add_sub(self):
        assert Vec3(1, 2, 3) + Vec3(4, 5, 6) == Vec3(5, 7, 9)
        assert Vec3(4, 5, 6) - Vec3(1, 2, 3) == Vec3(3, 3, 3)

    def test_scalar_mul_div(self):
        assert Vec3(1, 2, 3) * 2 == Vec3(2, 4, 6)
        assert 2 * Vec3(1, 2, 3) == Vec3(2, 4, 6)
        assert Vec3(2, 4, 6) / 2 == Vec3(1, 2, 3)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Vec3(1, 1, 1) / 0.0

    def test_negation_and_iteration(self):
        assert -Vec3(1, -2, 3) == Vec3(-1, 2, -3)
        assert list(Vec3(1, 2, 3)) == [1, 2, 3]

    def test_from_iterable(self):
        assert Vec3.from_iterable([1, 2, 3]) == Vec3(1, 2, 3)
        with pytest.raises(ValueError):
            Vec3.from_iterable([1, 2])


class TestGeometry:
    def test_norm_and_distance(self):
        assert Vec3(3, 4, 0).norm() == pytest.approx(5.0)
        assert Vec3(0, 0, 0).distance_to(Vec3(1, 1, 1)) == pytest.approx(math.sqrt(3))

    def test_horizontal_distance_ignores_z(self):
        assert Vec3(0, 0, 10).horizontal_distance_to(Vec3(3, 4, -5)) == pytest.approx(5.0)

    def test_dot_and_cross(self):
        assert Vec3(1, 0, 0).dot(Vec3(0, 1, 0)) == 0.0
        assert Vec3(1, 0, 0).cross(Vec3(0, 1, 0)) == Vec3(0, 0, 1)

    def test_unit_of_zero_vector(self):
        assert Vec3.zero().unit() == Vec3.zero()

    def test_clamp_norm(self):
        clamped = Vec3(10, 0, 0).clamp_norm(2.0)
        assert clamped.norm() == pytest.approx(2.0)
        assert Vec3(1, 0, 0).clamp_norm(2.0) == Vec3(1, 0, 0)
        with pytest.raises(ValueError):
            Vec3(1, 0, 0).clamp_norm(-1.0)

    def test_lerp(self):
        assert Vec3(0, 0, 0).lerp(Vec3(2, 2, 2), 0.5) == Vec3(1, 1, 1)

    def test_with_z(self):
        assert Vec3(1, 2, 3).with_z(9.0) == Vec3(1, 2, 9)

    def test_is_finite(self):
        assert Vec3(1, 2, 3).is_finite()
        assert not Vec3(float("nan"), 0, 0).is_finite()

    def test_almost_equal(self):
        assert Vec3(1, 1, 1).almost_equal(Vec3(1 + 1e-12, 1, 1))
        assert not Vec3(1, 1, 1).almost_equal(Vec3(1.1, 1, 1))


class TestSegments:
    def test_closest_point_interior(self):
        closest = closest_point_on_segment(Vec3(1, 1, 0), Vec3(0, 0, 0), Vec3(2, 0, 0))
        assert closest == Vec3(1, 0, 0)

    def test_closest_point_clamps_to_endpoints(self):
        closest = closest_point_on_segment(Vec3(-5, 0, 0), Vec3(0, 0, 0), Vec3(2, 0, 0))
        assert closest == Vec3(0, 0, 0)

    def test_degenerate_segment(self):
        assert distance_point_to_segment(Vec3(1, 0, 0), Vec3(0, 0, 0), Vec3(0, 0, 0)) == 1.0

    def test_polyline_distance(self):
        waypoints = [Vec3(0, 0, 0), Vec3(2, 0, 0), Vec3(2, 2, 0)]
        assert distance_point_to_polyline(Vec3(1, 1, 0), waypoints) == pytest.approx(1.0)

    def test_polyline_single_point(self):
        assert distance_point_to_polyline(Vec3(1, 0, 0), [Vec3(0, 0, 0)]) == 1.0

    def test_polyline_empty_raises(self):
        with pytest.raises(ValueError):
            distance_point_to_polyline(Vec3(), [])


class TestVectorProperties:
    @given(a=vectors, b=vectors)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b):
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-9

    @given(a=vectors, b=vectors)
    @settings(max_examples=100, deadline=None)
    def test_distance_is_symmetric(self, a, b):
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(v=vectors, cap=st.floats(min_value=0.0, max_value=50.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_clamp_norm_never_exceeds_cap(self, v, cap):
        assert v.clamp_norm(cap).norm() <= cap + 1e-9

    @given(v=vectors)
    @settings(max_examples=100, deadline=None)
    def test_unit_vector_has_unit_norm(self, v):
        unit = v.unit()
        if v.norm() > 1e-9:
            assert unit.norm() == pytest.approx(1.0, abs=1e-6)

    @given(p=vectors, a=vectors, b=vectors)
    @settings(max_examples=100, deadline=None)
    def test_segment_distance_not_more_than_endpoint_distance(self, p, a, b):
        segment_distance = distance_point_to_segment(p, a, b)
        assert segment_distance <= p.distance_to(a) + 1e-9
        assert segment_distance <= p.distance_to(b) + 1e-9
