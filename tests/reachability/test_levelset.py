"""Tests for the grid-based backward-reachable-set (level-set substitute)."""

import pytest

from repro.dynamics import BoundedDoubleIntegrator, DoubleIntegratorParams, DroneState
from repro.geometry import AABB, Vec3, empty_workspace
from repro.reachability import LevelSetAnalysis


@pytest.fixture
def analysis():
    workspace = empty_workspace(side=20.0, ceiling=10.0)
    workspace.add_obstacle(AABB.from_footprint(9.0, 9.0, 2.0, 2.0, 8.0))
    model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))
    return LevelSetAnalysis(workspace, model, resolution=0.5, altitude=2.0)


class TestBackwardReachableSet:
    def test_cells_near_obstacle_are_reachable(self, analysis):
        brs = analysis.backward_reachable_set(horizon=0.2)
        assert brs.contains(Vec3(8.7, 10.0, 2.0))

    def test_cells_far_from_obstacle_are_not_reachable(self, analysis):
        brs = analysis.backward_reachable_set(horizon=0.2)
        assert not brs.contains(Vec3(2.0, 2.0, 2.0))

    def test_out_of_grid_counts_as_reachable(self, analysis):
        brs = analysis.backward_reachable_set(horizon=0.2)
        assert brs.contains(Vec3(-5.0, 0.0, 2.0))

    def test_reachable_set_grows_with_horizon(self, analysis):
        small = analysis.backward_reachable_set(horizon=0.1)
        large = analysis.backward_reachable_set(horizon=1.0)
        assert large.fraction_of_workspace() > small.fraction_of_workspace()

    def test_clearance_margin_signs(self, analysis):
        brs = analysis.backward_reachable_set(horizon=0.2)
        assert brs.clearance_margin(Vec3(2.0, 2.0, 2.0)) > 0.0
        assert brs.clearance_margin(Vec3(9.5, 10.0, 2.0)) <= 0.0
        assert brs.clearance_margin(Vec3(-5.0, 0.0, 2.0)) == float("-inf")

    def test_worst_case_displacement_uses_model(self, analysis):
        assert analysis.worst_case_displacement(0.2) == pytest.approx(
            analysis.model.max_displacement(analysis.model.max_speed, 0.2)
        )
        assert analysis.worst_case_displacement(0.2, speed=1.0) < analysis.worst_case_displacement(0.2)


class TestPredicates:
    def test_safer_region_predicate(self, analysis):
        safer = analysis.safer_region_predicate(two_delta=0.2)
        assert safer(DroneState(position=Vec3(2.0, 2.0, 2.0)))
        assert not safer(DroneState(position=Vec3(9.2, 10.0, 2.0)))

    def test_safer_region_shrinks_with_extra_margin(self, analysis):
        plain = analysis.safer_region_predicate(two_delta=0.2)
        strict = analysis.safer_region_predicate(two_delta=0.2, extra_margin=3.0)
        boundary_state = DroneState(position=Vec3(7.0, 10.0, 2.0))
        assert plain(boundary_state)
        assert not strict(boundary_state)

    def test_switching_region_is_speed_aware(self, analysis):
        ttf = analysis.switching_region_predicate(two_delta=0.2)
        position = Vec3(8.6, 10.0, 2.0)
        slow = DroneState(position=position, velocity=Vec3(0.1, 0.0, 0.0))
        fast = DroneState(position=position, velocity=Vec3(4.0, 0.0, 0.0))
        assert ttf(fast)
        assert not ttf(slow)

    def test_switching_region_outside_grid(self, analysis):
        ttf = analysis.switching_region_predicate(two_delta=0.2)
        assert ttf(DroneState(position=Vec3(-10.0, 0.0, 2.0)))

    def test_distance_at(self, analysis):
        assert analysis.distance_at(Vec3(9.5, 10.0, 2.0)) <= 0.5
        assert analysis.distance_at(Vec3(2.0, 2.0, 2.0)) > 5.0
        assert analysis.distance_at(Vec3(-10.0, 0.0, 2.0)) == 0.0

    def test_consistency_with_worst_case_reach(self, analysis):
        """φ_safer = R(φ_safe, 2Δ): from any sampled φ_safer state the
        obstacle cannot be reached within 2Δ even at maximum speed."""
        two_delta = 0.2
        safer = analysis.safer_region_predicate(two_delta=two_delta)
        reach_radius = analysis.worst_case_displacement(two_delta)
        for x in range(1, 20):
            for y in range(1, 20):
                state = DroneState(position=Vec3(float(x), float(y), 2.0))
                if safer(state):
                    true_distance = analysis.workspace.distance_to_nearest_obstacle(state.position)
                    # Grid distances over-estimate by at most one diagonal cell.
                    assert true_distance + 0.75 > reach_radius
