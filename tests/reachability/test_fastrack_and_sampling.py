"""Tests for the FaSTrack-style synthesis and the state samplers."""

import pytest

from repro.dynamics import BoundedDoubleIntegrator, DoubleIntegratorParams
from repro.geometry import AABB, Vec3, empty_workspace
from repro.reachability import (
    SafeTrackerParams,
    StateSampler,
    grid_positions,
    synthesize_safe_tracker,
)


@pytest.fixture
def model():
    return BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))


@pytest.fixture
def workspace():
    ws = empty_workspace(side=20.0, ceiling=10.0)
    ws.add_obstacle(AABB.from_footprint(9.0, 9.0, 2.0, 2.0, 8.0))
    return ws


class TestSynthesis:
    def test_synthesised_params_are_conservative(self, model, workspace):
        params, certificate = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.3)
        assert params.max_speed == pytest.approx(1.2)
        assert params.max_speed < model.max_speed
        # The obstacle margin dominates the stopping distance (what makes the
        # tracking-error certificate sound).
        assert params.obstacle_margin > certificate.stopping_distance

    def test_certificate_quantities(self, model, workspace):
        _, certificate = synthesize_safe_tracker(model, workspace)
        assert certificate.stopping_distance > 0.0
        assert certificate.recovery_rate > 0.0
        assert certificate.p2a_holds_for_clearance(certificate.invariant_clearance + 0.1)
        assert not certificate.p2a_holds_for_clearance(0.0)

    def test_recovery_time_bound(self, model, workspace):
        _, certificate = synthesize_safe_tracker(model, workspace)
        assert certificate.recovery_time_bound(0.0, 1.0) == pytest.approx(1.0 / certificate.recovery_rate)
        assert certificate.recovery_time_bound(2.0, 1.0) == 0.0

    def test_invalid_speed_fraction(self, model, workspace):
        with pytest.raises(ValueError):
            synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.0)

    def test_param_validation(self):
        with pytest.raises(ValueError):
            SafeTrackerParams(max_speed=0.0, max_acceleration=1.0, position_gain=1.0,
                              velocity_gain=1.0, obstacle_margin=0.5)
        with pytest.raises(ValueError):
            SafeTrackerParams(max_speed=1.0, max_acceleration=1.0, position_gain=-1.0,
                              velocity_gain=1.0, obstacle_margin=0.5)
        with pytest.raises(ValueError):
            SafeTrackerParams(max_speed=1.0, max_acceleration=1.0, position_gain=1.0,
                              velocity_gain=1.0, obstacle_margin=-0.5)


class TestStateSampler:
    def test_samples_respect_speed_and_position_margin(self, workspace):
        sampler = StateSampler(workspace=workspace, max_speed=2.0, position_margin=1.0, seed=1)
        for _ in range(30):
            state = sampler.sample()
            assert state.speed <= 2.0
            assert workspace.is_free(state.position, margin=1.0)

    def test_sample_satisfying(self, workspace):
        sampler = StateSampler(workspace=workspace, max_speed=2.0, seed=2)
        states = sampler.sample_satisfying(lambda s: s.position.x < 5.0, count=5)
        assert len(states) == 5
        assert all(state.position.x < 5.0 for state in states)

    def test_sample_satisfying_impossible_predicate(self, workspace):
        sampler = StateSampler(workspace=workspace, max_speed=2.0, seed=3)
        with pytest.raises(RuntimeError):
            sampler.sample_satisfying(lambda s: False, count=1, max_tries_per_sample=10)

    def test_negative_speed_rejected(self, workspace):
        with pytest.raises(ValueError):
            StateSampler(workspace=workspace, max_speed=-1.0)

    def test_deterministic_given_seed(self, workspace):
        a = StateSampler(workspace=workspace, max_speed=2.0, seed=7).sample()
        b = StateSampler(workspace=workspace, max_speed=2.0, seed=7).sample()
        assert a.position.almost_equal(b.position)


class TestGridPositions:
    def test_grid_positions_are_free(self, workspace):
        points = list(grid_positions(workspace, spacing=2.0, altitude=2.0))
        assert points
        assert all(workspace.is_free(point) for point in points)

    def test_spacing_must_be_positive(self, workspace):
        with pytest.raises(ValueError):
            list(grid_positions(workspace, spacing=0.0, altitude=2.0))
