"""Tests for worst-case interval reachability (the DM's ttf_2Δ substrate)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import (
    BoundedDoubleIntegrator,
    ControlCommand,
    DoubleIntegratorParams,
    DroneState,
)
from repro.geometry import AABB, Vec3, empty_workspace
from repro.reachability import (
    ReachBall,
    SampledControllerReachability,
    WorstCaseReachability,
    reach_ball_union,
)


@pytest.fixture
def model():
    return BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0, drag=0.0))


@pytest.fixture
def workspace_with_wall():
    workspace = empty_workspace(side=20.0, ceiling=10.0)
    workspace.add_obstacle(AABB.from_footprint(10.0, 0.0, 2.0, 20.0, 8.0))
    return workspace


class TestReachBall:
    def test_contains_and_box(self):
        ball = ReachBall(center=Vec3(1, 1, 1), radius=2.0, horizon=0.5)
        assert ball.contains(Vec3(2, 1, 1))
        assert not ball.contains(Vec3(4, 1, 1))
        box = ball.as_box()
        assert box.lo == Vec3(-1, -1, -1)

    def test_union_bounding_box(self):
        balls = [
            ReachBall(Vec3(0, 0, 0), 1.0, 0.1),
            ReachBall(Vec3(5, 0, 0), 1.0, 0.1),
        ]
        box = reach_ball_union(balls)
        assert box.lo.x == pytest.approx(-1.0)
        assert box.hi.x == pytest.approx(6.0)
        with pytest.raises(ValueError):
            reach_ball_union([])


class TestWorstCaseReachability:
    def test_reach_ball_radius_grows_with_speed_and_horizon(self, model):
        reach = WorstCaseReachability(model)
        slow = reach.reach_ball(DroneState(velocity=Vec3(0.5, 0, 0)), 0.2)
        fast = reach.reach_ball(DroneState(velocity=Vec3(3.5, 0, 0)), 0.2)
        longer = reach.reach_ball(DroneState(velocity=Vec3(0.5, 0, 0)), 0.4)
        assert fast.radius > slow.radius
        assert longer.radius > slow.radius

    def test_may_leave_safe_near_wall(self, model, workspace_with_wall):
        reach = WorstCaseReachability(model)
        near = DroneState(position=Vec3(9.5, 10.0, 2.0), velocity=Vec3(3.0, 0.0, 0.0))
        far = DroneState(position=Vec3(2.0, 10.0, 2.0), velocity=Vec3(3.0, 0.0, 0.0))
        assert reach.may_leave_safe(near, workspace_with_wall, 0.2)
        assert not reach.may_leave_safe(far, workspace_with_wall, 0.2)

    def test_unavoidable_travel_radius_includes_braking(self, model):
        reach = WorstCaseReachability(model)
        state = DroneState(velocity=Vec3(3.0, 0.0, 0.0))
        plain = model.max_displacement(3.0, 0.2)
        with_braking = reach.unavoidable_travel_radius(state, 0.2)
        assert with_braking > plain

    def test_ttf_checker_variants(self, model, workspace_with_wall):
        reach = WorstCaseReachability(model)
        with_braking = reach.make_ttf_checker(workspace_with_wall, 0.2, include_braking=True)
        pure_reach = reach.make_ttf_checker(workspace_with_wall, 0.2, include_braking=False)
        # A state from which pure 2Δ reach is fine but braking is not
        # (clearance 1.5 m: above the 0.8 m travel bound, below the
        # 2.1 m travel-plus-stopping bound at full speed).
        state = DroneState(position=Vec3(8.5, 10.0, 2.0), velocity=Vec3(4.0, 0.0, 0.0))
        assert with_braking(state)
        assert not pure_reach(state)

    @given(
        x=st.floats(min_value=1.0, max_value=9.0, allow_nan=False),
        speed=st.floats(min_value=0.0, max_value=4.0, allow_nan=False),
        ax=st.floats(min_value=-6.0, max_value=6.0, allow_nan=False),
        ay=st.floats(min_value=-6.0, max_value=6.0, allow_nan=False),
        horizon=st.floats(min_value=0.05, max_value=0.5, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_reach_ball_soundness_against_simulation(self, x, speed, ax, ay, horizon):
        """Every simulated behaviour stays inside the analytic reach ball."""
        model = BoundedDoubleIntegrator(
            DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0, drag=0.0)
        )
        reach = WorstCaseReachability(model)
        state = DroneState(position=Vec3(x, 10.0, 2.0), velocity=Vec3(speed, 0.0, 0.0))
        ball = reach.reach_ball(state, horizon)
        final = model.rollout(state, ControlCommand(acceleration=Vec3(ax, ay, 0.0)), horizon, dt=0.01)
        assert ball.contains(final.position) or state.position.distance_to(final.position) <= ball.radius + 1e-6


class TestSampledControllerReachability:
    def test_rollout_length_and_content(self, model):
        rollouts = SampledControllerReachability(model, dt=0.1)
        states = rollouts.rollout(
            DroneState(), lambda state, now: ControlCommand(acceleration=Vec3(1.0, 0, 0)), 1.0
        )
        assert len(states) == 11
        assert states[-1].velocity.x > 0.0

    def test_stays_within_predicate(self, model):
        rollouts = SampledControllerReachability(model, dt=0.05)
        braking = lambda state, now: ControlCommand(acceleration=state.velocity * -6.0)
        start = DroneState(position=Vec3(0, 0, 2), velocity=Vec3(1.0, 0, 0))
        assert rollouts.stays_within(start, braking, 2.0, lambda s: s.position.x < 1.0)

    def test_invalid_arguments(self, model):
        with pytest.raises(ValueError):
            SampledControllerReachability(model, dt=0.0)
        rollouts = SampledControllerReachability(model)
        with pytest.raises(ValueError):
            rollouts.rollout(DroneState(), lambda s, t: ControlCommand.hover(), -1.0)
