"""Batch/scalar equivalence for the worst-case reachability queries."""

import random

import numpy as np
import pytest

from repro.dynamics import BoundedDoubleIntegrator, DoubleIntegratorParams, DroneState
from repro.geometry import Vec3, grid_city_workspace
from repro.reachability import LevelSetAnalysis, WorstCaseReachability, states_as_arrays


@pytest.fixture(scope="module")
def setup():
    workspace = grid_city_workspace()
    model = BoundedDoubleIntegrator(
        DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0)
    )
    rng = random.Random(5)
    states = [
        DroneState(
            position=workspace.bounds.random_point(rng),
            velocity=Vec3(rng.uniform(-6, 6), rng.uniform(-6, 6), rng.uniform(-1, 1)),
        )
        for _ in range(500)
    ]
    return workspace, model, WorstCaseReachability(model), states


@pytest.mark.parametrize("horizon", [0.0, 0.2, 1.0, 3.0])
class TestBatchedReachability:
    def test_max_displacement_batch_bit_equal(self, setup, horizon):
        _, model, _, states = setup
        _, speeds = states_as_arrays(states)
        scalar = np.array([model.max_displacement(s.speed, horizon) for s in states])
        assert (scalar == model.max_displacement_batch(speeds, horizon)).all()

    def test_stopping_distance_batch_bit_equal(self, setup, horizon):
        _, model, _, states = setup
        _, speeds = states_as_arrays(states)
        scalar = np.array([model.stopping_distance(s.speed) for s in states])
        assert (scalar == model.stopping_distance_batch(speeds)).all()

    def test_may_leave_safe_batch_bit_equal(self, setup, horizon):
        workspace, _, reach, states = setup
        positions, speeds = states_as_arrays(states)
        for margin in (0.0, 0.05):
            scalar = np.array(
                [reach.may_leave_safe(s, workspace, horizon, margin=margin) for s in states]
            )
            batch = reach.may_leave_safe_batch(positions, speeds, workspace, horizon, margin=margin)
            assert (scalar == batch).all()

    def test_must_switch_batch_bit_equal(self, setup, horizon):
        workspace, _, reach, states = setup
        positions, speeds = states_as_arrays(states)
        scalar = np.array([reach.must_switch(s, workspace, horizon, margin=0.05) for s in states])
        batch = reach.must_switch_batch(positions, speeds, workspace, horizon, margin=0.05)
        assert (scalar == batch).all()


class TestFieldBackedScalarPath:
    def test_field_does_not_change_decisions(self, setup):
        workspace, _, reach, states = setup
        field = workspace.clearance_field()
        for state in states[:250]:
            for horizon in (0.2, 1.0):
                assert reach.may_leave_safe(
                    state, workspace, horizon, margin=0.05, field=field
                ) == reach.may_leave_safe(state, workspace, horizon, margin=0.05)
                assert reach.must_switch(
                    state, workspace, horizon, margin=0.05, field=field
                ) == reach.must_switch(state, workspace, horizon, margin=0.05)

    def test_ttf_checker_accepts_field(self, setup):
        workspace, _, reach, states = setup
        field = workspace.clearance_field()
        plain = reach.make_ttf_checker(workspace, 0.2, margin=0.05)
        cached = reach.make_ttf_checker(workspace, 0.2, margin=0.05, field=field)
        for state in states[:250]:
            assert plain(state) == cached(state)


class TestLevelSetBatch:
    def test_backward_reachable_set_batches(self, setup):
        workspace, model, _, states = setup
        analysis = LevelSetAnalysis(workspace, model, resolution=0.5)
        brs = analysis.backward_reachable_set(0.2)
        positions, _ = states_as_arrays(states)
        contains_scalar = np.array([brs.contains(s.position) for s in states])
        assert (contains_scalar == brs.contains_batch(positions)).all()
        margin_scalar = np.array([brs.clearance_margin(s.position) for s in states])
        assert (margin_scalar == brs.clearance_margin_batch(positions)).all()
