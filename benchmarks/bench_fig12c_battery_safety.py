"""Figure 12c — battery safety during a surveillance mission.

Paper result (Section V-B, Figure 12c): when the battery charge crosses the
safety threshold the battery decision module transfers control to the
certified landing planner, which aborts the mission and lands the drone —
so the drone never crashes because of an empty battery.  The benchmark runs
a long looping mission on a fast-draining battery with and without the
battery RTA module.
"""

from __future__ import annotations

import pytest

from repro.apps import StackConfig, build_stack
from repro.dynamics import BatteryParams
from repro.simulation import waypoint_range

MISSION_TIMEOUT = 500.0
FAST_DRAIN = BatteryParams(idle_rate=0.008, accel_rate=0.002, descent_speed=1.0, max_altitude=12.0)


def _mission(protect_battery: bool, seed: int = 2):
    world = waypoint_range()
    config = StackConfig(
        world=world,
        goals=world.surveillance_points,
        loop_goals=True,
        planner="straight",
        protect_battery=protect_battery,
        battery_params=FAST_DRAIN,
        seed=seed,
    )
    stack = build_stack(config)
    metrics, result = stack.run(duration=MISSION_TIMEOUT, stop_on_complete=False)
    battery_switches = (
        metrics.disengagements.get("BatterySafety", 0) if protect_battery else 0
    )
    return metrics, battery_switches


@pytest.mark.benchmark(group="fig12c")
def test_fig12c_battery_safety(benchmark, table_printer):
    def run_both():
        return _mission(protect_battery=True), _mission(protect_battery=False)

    (protected, protected_switches), (unprotected, _) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table_printer(
        "Figure 12c: battery safety (fast-draining battery, looping mission)",
        ["configuration", "battery aborts", "depleted in air", "landed safely", "final charge", "flight time [s]"],
        [
            ["battery RTA module", protected_switches, protected.battery_depleted_in_air,
             protected.landed_safely, f"{protected.final_charge:.2f}", f"{protected.mission_time:.0f}"],
            ["no battery protection", "-", unprotected.battery_depleted_in_air,
             unprotected.landed_safely, f"{unprotected.final_charge:.2f}", f"{unprotected.mission_time:.0f}"],
        ],
    )
    # Shape (paper): the protected drone aborts exactly once and lands with
    # charge to spare; the unprotected drone flies until the battery dies in
    # the air.
    assert protected_switches == 1
    assert not protected.battery_depleted_in_air
    assert protected.landed_safely
    assert protected.final_charge > 0.0
    assert unprotected.battery_depleted_in_air
    assert unprotected.crashed
