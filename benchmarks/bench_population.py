"""Benchmark: the population execution plane vs the serial reset-reuse sweep.

The population tester answers duplicate trails from its radix trie and
resumes live runs from shared-prefix snapshots, so a random sweep whose
trail space is smaller than its execution budget collapses to a fraction
of the serial engine work.  Two benchmarks hold the plane to explicit,
machine-relative bars (both sides always measured in the same process):

* **snapshot sweep** (``drone-surveillance``, 1 s horizon, no schedule
  permutation, 2048 executions, seed 11) — the delta-snapshot path
  (copy-on-write dirty tracking, the default) must beat the serial
  reset-and-reuse sweep by ≥ 8x, and the legacy whole-pickle path by
  construction still ≥ 5x, with reports and coverage byte-equal to the
  serial oracle; a fast wrong answer is worthless;
* **vectorized sweep** (``plant-surveillance``, 12 vehicles, unsafe
  start) — the row-group matrix plant (one ``apply_batch`` per physics
  substep across the fleet) must beat the scalar per-plant loop inside
  the same population tester, again with identical reports.

All wall times feed the benchmark regression gate
(``population/serial-sweep``, ``population/population-sweep``,
``population/delta-snapshot``, ``population/vectorized-sweep``).
"""

from __future__ import annotations

import time

import pytest

from repro.testing import PopulationTester, RandomStrategy, SystematicTester, scenario_factory

SWEEP_EXECUTIONS = 2048
SWEEP_HORIZON = 1.0
SWEEP_SEED = 11
SWEEP_MAX_PERMUTED = 1
SWEEP_REPEATS = 2
LEGACY_SPEEDUP_BAR = 5.0
DELTA_SPEEDUP_BAR = 8.0

VEC_DRONES = 12
VEC_EXECUTIONS = 48
VEC_SEED = 4
VEC_REPEATS = 2
VEC_SPEEDUP_BAR = 1.1


def _factory():
    return scenario_factory("drone-surveillance", horizon=SWEEP_HORIZON)


def _strategy():
    return RandomStrategy(seed=SWEEP_SEED, max_executions=SWEEP_EXECUTIONS)


def _report_keys(tester, report):
    return (
        [
            (
                record.index,
                record.steps,
                tuple(record.trail or ()),
                tuple((v.time, v.monitor, v.message) for v in record.violations),
            )
            for record in report.executions
        ],
        tester.coverage.counts,
    )


def _timed(tester, executions):
    started = time.perf_counter()
    report = tester.explore()
    elapsed = time.perf_counter() - started
    assert report.execution_count == executions
    return elapsed, _report_keys(tester, report)


def _serial_sweep():
    return _timed(
        SystematicTester(
            _factory(), _strategy(), max_permuted=SWEEP_MAX_PERMUTED, reuse_instances=True
        ),
        SWEEP_EXECUTIONS,
    )


def _population_sweep(use_delta_snapshots):
    tester = PopulationTester(
        _factory(),
        _strategy(),
        max_permuted=SWEEP_MAX_PERMUTED,
        use_delta_snapshots=use_delta_snapshots,
    )
    elapsed, keys = _timed(tester, SWEEP_EXECUTIONS)
    return elapsed, keys, tester.stats


@pytest.mark.benchmark(group="population")
def test_population_sweep_throughput(table_printer, benchmark_gate):
    """Delta snapshots ≥ 8x serial (legacy pickling ≥ 5x), identical reports."""
    _serial_sweep()  # warm the per-process world/clearance memos once
    serial_keys = legacy_keys = delta_keys = None
    legacy_stats = delta_stats = None
    serial = legacy = delta = float("inf")
    for _ in range(SWEEP_REPEATS):
        elapsed, serial_keys = _serial_sweep()
        serial = min(serial, elapsed)
        elapsed, legacy_keys, legacy_stats = _population_sweep(use_delta_snapshots=False)
        legacy = min(legacy, elapsed)
        elapsed, delta_keys, delta_stats = _population_sweep(use_delta_snapshots=True)
        delta = min(delta, elapsed)
    assert legacy_keys == serial_keys, (
        "legacy-snapshot population report/coverage diverged from the serial sweep"
    )
    assert delta_keys == serial_keys, (
        "delta-snapshot population report/coverage diverged from the serial sweep"
    )
    assert delta_stats.delta_restores > 0 and delta_stats.pickle_fallbacks == 0
    legacy_speedup = serial / legacy
    delta_speedup = serial / delta
    table_printer(
        f"Population plane: {SWEEP_EXECUTIONS}-execution 'drone-surveillance' sweep "
        f"(horizon {SWEEP_HORIZON:.0f} s, max_permuted={SWEEP_MAX_PERMUTED})",
        ["configuration", "wall time [s]", "executions/s", "speedup"],
        [
            ["serial reset-and-reuse", f"{serial:.3f}",
             f"{SWEEP_EXECUTIONS / serial:.0f}", "1.00x"],
            ["population, whole-pickle snapshots", f"{legacy:.3f}",
             f"{SWEEP_EXECUTIONS / legacy:.0f}", f"{legacy_speedup:.2f}x"],
            ["population, delta snapshots (default)", f"{delta:.3f}",
             f"{SWEEP_EXECUTIONS / delta:.0f}", f"{delta_speedup:.2f}x"],
            [f"  compacted {delta_stats.compacted}/{delta_stats.executions} rows, "
             f"{delta_stats.delta_restores} delta restores, "
             f"{delta_stats.pickle_fallbacks} pickle fallbacks", "", "", ""],
        ],
    )
    benchmark_gate("population/serial-sweep", serial)
    benchmark_gate("population/population-sweep", legacy)
    benchmark_gate("population/delta-snapshot", delta)
    # Machine-relative bars: every side was measured in this process, so
    # the assertions are meaningful on any hardware, including reference
    # re-recording runs.
    assert legacy_speedup >= LEGACY_SPEEDUP_BAR, (
        f"expected >= {LEGACY_SPEEDUP_BAR:.0f}x over the serial reset-reuse sweep, "
        f"measured {legacy_speedup:.2f}x ({SWEEP_EXECUTIONS / legacy:.0f} exec/s)"
    )
    assert delta_speedup >= DELTA_SPEEDUP_BAR, (
        f"expected >= {DELTA_SPEEDUP_BAR:.0f}x over the serial reset-reuse sweep, "
        f"measured {delta_speedup:.2f}x ({SWEEP_EXECUTIONS / delta:.0f} exec/s)"
    )


def _vectorized_sweep(use_batch_plant):
    tester = PopulationTester(
        scenario_factory(
            "plant-surveillance", drones=VEC_DRONES, unsafe_start=True
        ),
        RandomStrategy(seed=VEC_SEED, max_executions=VEC_EXECUTIONS),
        max_permuted=1,
        use_batch_plant=use_batch_plant,
    )
    elapsed, keys = _timed(tester, VEC_EXECUTIONS)
    return elapsed, keys, tester.stats


@pytest.mark.benchmark(group="population")
def test_vectorized_plant_sweep(table_printer, benchmark_gate):
    """The (K,…) matrix plant beats the scalar loop at fleet scale."""
    _vectorized_sweep(True)  # warm the shared-world memos once
    batch_keys = scalar_keys = batch_stats = None
    batch = scalar = float("inf")
    for _ in range(VEC_REPEATS):
        elapsed, batch_keys, batch_stats = _vectorized_sweep(use_batch_plant=True)
        batch = min(batch, elapsed)
        elapsed, scalar_keys, _ = _vectorized_sweep(use_batch_plant=False)
        scalar = min(scalar, elapsed)
    assert batch_keys == scalar_keys, (
        "row-group matrix plant diverged from the scalar per-plant loop"
    )
    assert batch_stats.executions == VEC_EXECUTIONS
    speedup = scalar / batch
    table_printer(
        f"Vectorized live rows: {VEC_EXECUTIONS}-execution 'plant-surveillance' sweep "
        f"({VEC_DRONES} vehicles, unsafe start)",
        ["integration path", "wall time [s]", "executions/s", "speedup"],
        [
            ["scalar per-plant loop", f"{scalar:.3f}",
             f"{VEC_EXECUTIONS / scalar:.0f}", "1.00x"],
            [f"row-group matrix plant (K={VEC_DRONES})", f"{batch:.3f}",
             f"{VEC_EXECUTIONS / batch:.0f}", f"{speedup:.2f}x"],
        ],
    )
    benchmark_gate("population/vectorized-sweep", batch)
    assert speedup >= VEC_SPEEDUP_BAR, (
        f"expected the matrix plant >= {VEC_SPEEDUP_BAR:.2f}x over the scalar "
        f"loop at {VEC_DRONES} vehicles, measured {speedup:.2f}x"
    )
