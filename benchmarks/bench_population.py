"""Benchmark: the population execution plane vs the serial reset-reuse sweep.

The population tester answers duplicate trails from its radix trie and
resumes live runs from shared-prefix snapshots, so a random sweep whose
trail space is smaller than its execution budget collapses to a fraction
of the serial engine work.  This benchmark measures that on the
``drone-surveillance`` scenario (1 s horizon, no schedule permutation,
2048 executions, seed 11) and holds the population plane to two bars:

* **equivalence** — the population report (indices, steps, trails,
  violations) and coverage must equal the serial reset-and-reuse sweep's,
  byte for byte; a fast wrong answer is worthless;
* **throughput** — ≥ 5x the serial reset-and-reuse sweep measured in the
  same process (machine-relative, so the bar travels to any hardware; the
  serial baseline corresponds to ``reset-reuse/explorer-reset``, the
  ~870 exec/s reference recorded at 0.1334 s / 120 executions).

Both wall times feed the benchmark regression gate.
"""

from __future__ import annotations

import time

import pytest

from repro.testing import PopulationTester, RandomStrategy, SystematicTester, scenario_factory

SWEEP_EXECUTIONS = 2048
SWEEP_HORIZON = 1.0
SWEEP_SEED = 11
SWEEP_MAX_PERMUTED = 1
SWEEP_REPEATS = 2
SPEEDUP_BAR = 5.0


def _factory():
    return scenario_factory("drone-surveillance", horizon=SWEEP_HORIZON)


def _strategy():
    return RandomStrategy(seed=SWEEP_SEED, max_executions=SWEEP_EXECUTIONS)


def _report_keys(tester, report):
    return (
        [
            (
                record.index,
                record.steps,
                tuple(record.trail or ()),
                tuple((v.time, v.monitor, v.message) for v in record.violations),
            )
            for record in report.executions
        ],
        tester.coverage.counts,
    )


def _serial_sweep():
    tester = SystematicTester(
        _factory(), _strategy(), max_permuted=SWEEP_MAX_PERMUTED, reuse_instances=True
    )
    started = time.perf_counter()
    report = tester.explore()
    elapsed = time.perf_counter() - started
    assert report.execution_count == SWEEP_EXECUTIONS
    return elapsed, _report_keys(tester, report)


def _population_sweep():
    tester = PopulationTester(_factory(), _strategy(), max_permuted=SWEEP_MAX_PERMUTED)
    started = time.perf_counter()
    report = tester.explore()
    elapsed = time.perf_counter() - started
    assert report.execution_count == SWEEP_EXECUTIONS
    return elapsed, _report_keys(tester, report), tester.stats


@pytest.mark.benchmark(group="population")
def test_population_sweep_throughput(table_printer, benchmark_gate):
    """Population plane ≥ 5x serial reset-reuse, with identical reports."""
    _serial_sweep()  # warm the per-process world/clearance memos once
    serial_keys = population_keys = stats = None
    serial = population = float("inf")
    for _ in range(SWEEP_REPEATS):
        elapsed, serial_keys = _serial_sweep()
        serial = min(serial, elapsed)
        elapsed, population_keys, stats = _population_sweep()
        population = min(population, elapsed)
    assert population_keys == serial_keys, (
        "population report/coverage diverged from the serial sweep"
    )
    speedup = serial / population
    table_printer(
        f"Population plane: {SWEEP_EXECUTIONS}-execution 'drone-surveillance' sweep "
        f"(horizon {SWEEP_HORIZON:.0f} s, max_permuted={SWEEP_MAX_PERMUTED})",
        ["configuration", "wall time [s]", "executions/s", "speedup"],
        [
            ["serial reset-and-reuse", f"{serial:.3f}",
             f"{SWEEP_EXECUTIONS / serial:.0f}", "1.00x"],
            ["population (compaction + shared prefixes)", f"{population:.3f}",
             f"{SWEEP_EXECUTIONS / population:.0f}", f"{speedup:.2f}x"],
            [f"  compacted {stats.compacted}/{stats.executions} rows, "
             f"{stats.restores} snapshot restores", "", "", ""],
        ],
    )
    benchmark_gate("population/serial-sweep", serial)
    benchmark_gate("population/population-sweep", population)
    # Machine-relative bar: both sides were measured in this process, so
    # the assertion is meaningful on any hardware, including reference
    # re-recording runs.
    assert speedup >= SPEEDUP_BAR, (
        f"expected >= {SPEEDUP_BAR:.0f}x over the serial reset-reuse sweep, "
        f"measured {speedup:.2f}x ({SWEEP_EXECUTIONS / population:.0f} exec/s)"
    )
