"""Mission service vs. swarm facade — what does streaming cost?

The mission service wraps the same control plane + fleet the
:class:`~repro.swarm.SwarmTester` drives, but adds the client-facing
plane: per-mission event logs, cursor reads, a chunked HTTP event
stream and a final report round trip.  This benchmark runs the same
200-execution random sweep both ways on one host and asserts the
service's streaming overhead stays within 1.5x of the facade — the
streaming path must ride ingestion, not tax it.

Both measurements feed the benchmark regression gate
(``benchmark_reference.json``), so a change that bloats the event plane
turns this suite red.
"""

from __future__ import annotations

import time

import pytest

from repro.service import MissionClient, MissionServer
from repro.service.client import decode_report_records
from repro.swarm import SwarmTester
from repro.testing import RandomStrategy

SCENARIO = "drone-surveillance"
HORIZON = 2.0
EXECUTIONS = 200
SEED = 11

#: The satellite acceptance bound: streamed missions may cost at most
#: this factor over the batch facade on the same sweep.
MAX_STREAMING_OVERHEAD = 1.5


def _swarm_sweep():
    tester = SwarmTester(
        SCENARIO,
        scenario_overrides={"horizon": HORIZON},
        strategy=RandomStrategy(seed=SEED, max_executions=EXECUTIONS),
        drones=2,
        track_coverage=True,
    )
    started = time.perf_counter()
    report = tester.explore(confirm_counterexamples=False)
    return report, time.perf_counter() - started


def _service_sweep():
    with MissionServer(fleet=2) as server:
        client = MissionClient(server.url)
        started = time.perf_counter()
        mission_id = client.submit(
            SCENARIO,
            strategy=RandomStrategy(seed=SEED, max_executions=EXECUTIONS),
            overrides={"horizon": HORIZON},
            track_coverage=True,
            confirm=False,
        )
        streamed = sum(
            1 for event in client.events(mission_id) if event["type"] == "record"
        )
        report = client.result(mission_id)
        elapsed = time.perf_counter() - started
    return report, streamed, elapsed


@pytest.mark.benchmark(group="service")
def test_mission_streaming_overhead(benchmark, table_printer, benchmark_gate):
    def run_both():
        return _swarm_sweep(), _service_sweep()

    (swarm, swarm_s), (report, streamed, service_s) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    benchmark_gate("service/swarm-2-drones", swarm_s)
    benchmark_gate("service/mission-streamed", service_s)
    overhead = service_s / swarm_s
    table_printer(
        f"Mission service vs swarm facade: {EXECUTIONS}-execution sweep of '{SCENARIO}'",
        ["configuration", "wall time [s]", "executions/s", "overhead vs facade"],
        [
            ["SwarmTester, 2 localhost drones", f"{swarm_s:.2f}",
             f"{EXECUTIONS / swarm_s:.0f}", "1.00x"],
            ["MissionServer, streamed to client", f"{service_s:.2f}",
             f"{EXECUTIONS / service_s:.0f}", f"{overhead:.2f}x"],
        ],
    )
    # Fidelity first: the streamed mission is the same sweep.
    assert streamed == EXECUTIONS
    mission_records = decode_report_records(report)
    assert sorted(tuple(r.trail) for r in mission_records) == sorted(
        tuple(r.trail) for r in swarm.executions
    )
    assert report["duplicates"] == 0
    # The satellite bound: streaming must not tax the sweep.
    assert overhead <= MAX_STREAMING_OVERHEAD, (
        f"mission streaming overhead {overhead:.2f}x exceeds the "
        f"{MAX_STREAMING_OVERHEAD}x bound"
    )
