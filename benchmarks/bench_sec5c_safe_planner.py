"""Section V-C — RTA-protected motion planner with a bug-injected RRT*.

Paper result: bugs injected into the third-party RRT* implementation make
it occasionally emit motion plans that collide with obstacles; wrapping the
planner in an RTA module (certified grid planner as the safe counterpart,
plan validation as φ_plan) prevents the colliding plans from ever steering
the drone into an obstacle.  The benchmark compares the fully unprotected
stack against the planner-protected stack on the same faulty planner.
"""

from __future__ import annotations

import pytest

from repro.apps import StackConfig, build_stack
from repro.planning import PlannerBug
from repro.simulation import surveillance_city

SEEDS = range(2)
MISSION_TIMEOUT = 250.0


def _mission(protect: bool, seed: int):
    world = surveillance_city()
    # Diagonal goals force routes around buildings, so corner-cutting plans collide.
    goals = [world.surveillance_points[0], world.surveillance_points[4], world.surveillance_points[6]]
    config = StackConfig(
        world=world,
        goals=goals,
        loop_goals=False,
        planner="rrt",
        planner_bug=PlannerBug.CORNER_CUTTING,
        planner_bug_probability=0.5,
        protect_planner=protect,
        protect_motion_primitive=protect,
        protect_battery=False,
        seed=seed,
    )
    stack = build_stack(config)
    metrics, _ = stack.run(duration=MISSION_TIMEOUT)
    rejected = 0
    if stack.planner is not None:
        rejected = len(stack.system.module_named("SafeMotionPlanner").decision.disengagements)
    return metrics, rejected


@pytest.mark.benchmark(group="sec5c")
def test_sec5c_faulty_planner_protection(benchmark, table_printer):
    def campaign():
        protected_runs = [_mission(True, seed) for seed in SEEDS]
        unprotected_runs = [_mission(False, seed) for seed in SEEDS]
        return protected_runs, unprotected_runs

    protected_runs, unprotected_runs = benchmark.pedantic(campaign, rounds=1, iterations=1)
    protected_collisions = sum(int(metrics.collided) for metrics, _ in protected_runs)
    unprotected_collisions = sum(int(metrics.collided) for metrics, _ in unprotected_runs)
    plans_rejected = sum(rejected for _, rejected in protected_runs)
    table_printer(
        "Section V-C: bug-injected RRT* planner (corner-cutting, p=0.5)",
        ["configuration", "collisions", "colliding plans rejected", f"missions (n={len(list(SEEDS))})"],
        [
            ["RTA-protected planner + primitives", protected_collisions, plans_rejected, len(protected_runs)],
            ["unprotected stack", unprotected_collisions, "-", len(unprotected_runs)],
        ],
    )
    # Shape: the RTA-protected stack never collides and actually catches bad
    # plans; the unprotected stack collides in at least one mission.
    assert protected_collisions == 0
    assert plans_rejected >= 1
    assert unprotected_collisions >= 1
