"""Figure 12a — RTA-protected safe motion primitive (performance vs. safety).

Paper result (Section V-A): on the g1→g4 mission the drone takes ~10 s with
only the unsafe advanced controller (which can collide), ~14 s with the
RTA-protected motion primitive, and ~24 s with only the safe controller —
runtime assurance is a "safe middle ground" that does not sacrifice too
much performance.  The benchmark regenerates that three-row comparison; the
absolute seconds differ (different plant and controllers) but the ordering
and the rough ratios must hold.
"""

from __future__ import annotations

import pytest

from repro.apps import StackConfig, build_stack
from repro.simulation import waypoint_range

MISSION_TIMEOUT = 300.0


def _run_variant(protect: bool, sc_only: bool = False, seed: int = 3):
    world = waypoint_range()
    config = StackConfig(
        world=world,
        goals=world.surveillance_points,
        loop_goals=False,
        planner="straight",
        protect_motion_primitive=protect,
        protect_battery=False,
        sc_only=sc_only,
        seed=seed,
    )
    metrics, result = build_stack(config).run(duration=MISSION_TIMEOUT)
    return metrics


@pytest.mark.benchmark(group="fig12a")
def test_fig12a_mission_time_comparison(benchmark, table_printer):
    def run_all():
        return (
            _run_variant(protect=False),
            _run_variant(protect=True),
            _run_variant(protect=False, sc_only=True),
        )

    ac_only, rta, sc_only = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table_printer(
        "Figure 12a: g1..g4 mission — AC-only vs RTA-protected vs SC-only",
        ["configuration", "mission time [s]", "paper [s]", "collided", "disengagements", "AC fraction"],
        [
            ["AC only (unsafe)", f"{ac_only.mission_time:.1f}", "10", ac_only.collided,
             ac_only.total_disengagements, "1.00"],
            ["RTA-protected", f"{rta.mission_time:.1f}", "14", rta.collided,
             rta.total_disengagements, f"{rta.overall_ac_fraction():.2f}"],
            ["SC only", f"{sc_only.mission_time:.1f}", "24", sc_only.collided,
             sc_only.total_disengagements, "0.00"],
        ],
    )
    # Safety shape: only the unprotected advanced controller collides.
    assert ac_only.collided
    assert not rta.collided and rta.completed
    assert not sc_only.collided and sc_only.completed
    # Performance shape: AC-only < RTA < SC-only mission time.
    assert ac_only.mission_time < rta.mission_time < sc_only.mission_time
    # The RTA variant hands control to the SC and back (Figure 12a's red/green dots).
    assert rta.total_disengagements >= 1
    assert rta.total_reengagements >= 1
    # The RTA penalty stays well below the SC-only penalty (the "middle ground").
    assert rta.mission_time < 0.8 * sc_only.mission_time
