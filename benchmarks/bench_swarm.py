"""Swarm vs. process pool — distribution overhead and fidelity.

The swarm runs the exact shard descriptions the in-host
:class:`~repro.testing.ParallelTester` ships to its process pool, but
over an HTTP control plane with heartbeats, streamed per-execution
results and idempotent ingestion.  This benchmark measures what that
buys and costs on one host:

* the same ``drone-surveillance`` random sweep through the pool and
  through a localhost 2-drone swarm — wall time, executions/s, and the
  swarm's protocol overhead factor (expected: same order of magnitude;
  the swarm pays one HTTP round trip per execution);
* fidelity on the unsafe variant — the swarm's counterexamples replay
  on the serial engine and its report matches the pool's exactly.

Both measurements feed the benchmark regression gate
(``benchmark_reference.json``), so a change that silently bloats the
wire path or breaks streaming turns this suite red.
"""

from __future__ import annotations

import time

import pytest

from repro.swarm import SwarmTester
from repro.testing import ParallelTester, RandomStrategy

SCENARIO = "drone-surveillance"
HORIZON = 2.0
EXECUTIONS = 200
SEED = 11


def _pool_sweep(**extra_overrides):
    tester = ParallelTester(
        SCENARIO,
        scenario_overrides={"horizon": HORIZON, **extra_overrides},
        strategy=RandomStrategy(seed=SEED, max_executions=EXECUTIONS),
        workers=2,
        track_coverage=True,
    )
    started = time.perf_counter()
    report = tester.explore(confirm_counterexamples=False)
    return report, time.perf_counter() - started


def _swarm_sweep(**extra_overrides):
    tester = SwarmTester(
        SCENARIO,
        scenario_overrides={"horizon": HORIZON, **extra_overrides},
        strategy=RandomStrategy(seed=SEED, max_executions=EXECUTIONS),
        drones=2,
        track_coverage=True,
    )
    started = time.perf_counter()
    report = tester.explore(confirm_counterexamples=False)
    return report, time.perf_counter() - started


@pytest.mark.benchmark(group="swarm")
def test_swarm_throughput_vs_pool(benchmark, table_printer, benchmark_gate):
    def run_both():
        return _pool_sweep(), _swarm_sweep()

    (pool, pool_s), (swarm, swarm_s) = benchmark.pedantic(run_both, rounds=1, iterations=1)
    benchmark_gate("swarm/pool-2-workers", pool_s)
    benchmark_gate("swarm/localhost-2-drones", swarm_s)
    table_printer(
        f"Swarm vs pool: {EXECUTIONS}-execution random sweep of '{SCENARIO}'",
        ["configuration", "wall time [s]", "executions/s", "overhead vs pool"],
        [
            ["ParallelTester, 2 workers", f"{pool_s:.2f}", f"{EXECUTIONS / pool_s:.0f}", "1.00x"],
            ["SwarmTester, 2 localhost drones", f"{swarm_s:.2f}",
             f"{EXECUTIONS / swarm_s:.0f}", f"{swarm_s / pool_s:.2f}x"],
        ],
    )
    # Fidelity is the point; speed parity is reported, not asserted.
    assert sorted(tuple(r.trail) for r in swarm.executions) == \
        sorted(tuple(r.trail) for r in pool.executions)
    assert swarm.coverage.counts == pool.coverage.counts
    assert swarm.duplicates == 0


@pytest.mark.benchmark(group="swarm")
def test_swarm_counterexample_fidelity(benchmark, table_printer, benchmark_gate):
    def hunt():
        tester = SwarmTester(
            SCENARIO,
            scenario_overrides={"horizon": HORIZON, "include_unsafe_position": True},
            strategy=RandomStrategy(seed=SEED, max_executions=64),
            drones=2,
        )
        started = time.perf_counter()
        report = tester.explore(confirm_counterexamples=True)
        return report, time.perf_counter() - started

    report, elapsed = benchmark.pedantic(hunt, rounds=1, iterations=1)
    benchmark_gate("swarm/unsafe-hunt", elapsed)
    confirmed = sum(1 for confirmation in report.confirmations if confirmation.confirmed)
    table_printer(
        "Swarm counterexample fidelity: drone-found trails replayed serially",
        ["counterexamples found", "replayed", "confirmed identical", "duplicates dropped"],
        [[len(report.failing), len(report.confirmations), confirmed, report.duplicates]],
    )
    assert not report.ok, "the unsafe scenario variant must yield counterexamples"
    assert report.all_confirmed, "every swarm counterexample must replay serially"
