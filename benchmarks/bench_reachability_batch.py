"""Batched safety-query plane — scalar vs. vectorised throughput.

PR 2 introduced a batched, cached safety-query plane: numpy point batches
at the geometry layer (``clearance_batch``), batched worst-case
reachability (``may_leave_safe_batch``), a vectorised occupancy-grid
build + distance transform, and a per-workspace :class:`ClearanceField`
memo that the decision modules and monitors hit instead of re-walking the
obstacle list.  This benchmark measures each layer against the scalar
loops it replaced and the systematic-testing throughput the refactor was
for.

Expectations (asserted):

* batched clearance and reachability queries are >= 5x faster than the
  scalar loops at >= 1k points, with bit-identical answers;
* the vectorised occupancy rasterisation beats the per-cell loop >= 5x
  and marks the same cells; the chamfer distance transform beats the
  brushfire Dijkstra and matches it within floating-point rounding;
* the explorer's executions/s on the ``drone-surveillance`` sweep improve
  over the pre-PR configuration (uncached plane, per-step monitors).
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.geometry import OccupancyGrid, points_as_array
from repro.dynamics import BoundedDoubleIntegrator, DoubleIntegratorParams, DroneState
from repro.geometry.vec import Vec3
from repro.reachability import WorstCaseReachability, states_as_arrays
from repro.simulation import surveillance_city
from repro.testing import RandomStrategy, SystematicTester, scenario_factory

POINTS = 2000
REPEATS = 5
SWEEP_EXECUTIONS = 120
HORIZON = 2.0
SEED = 11


def _timed(callable_, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - started)
    return best


def _random_states(workspace, count: int) -> list:
    rng = random.Random(SEED)
    return [
        DroneState(
            position=workspace.bounds.random_point(rng),
            velocity=Vec3(rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(-1, 1)),
        )
        for _ in range(count)
    ]


@pytest.mark.benchmark(group="reachability-batch")
def test_batched_point_queries_speedup(benchmark, table_printer, benchmark_gate):
    workspace = surveillance_city().workspace
    states = _random_states(workspace, POINTS)
    points = points_as_array([state.position for state in states])
    positions, speeds = states_as_arrays(states)
    model = BoundedDoubleIntegrator(
        DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0)
    )
    reach = WorstCaseReachability(model)

    def measure():
        rows = []

        scalar_clearance = _timed(
            lambda: [workspace.clearance(state.position) for state in states]
        )
        batch_clearance = _timed(lambda: workspace.clearance_batch(points))
        scalar_values = np.array([workspace.clearance(state.position) for state in states])
        assert (scalar_values == workspace.clearance_batch(points)).all(), (
            "batched clearance must be bit-identical to the scalar loop"
        )
        rows.append(("clearance", scalar_clearance, batch_clearance))

        scalar_reach = _timed(
            lambda: [reach.may_leave_safe(s, workspace, 0.2, margin=0.05) for s in states]
        )
        batch_reach = _timed(
            lambda: reach.may_leave_safe_batch(positions, speeds, workspace, 0.2, margin=0.05)
        )
        scalar_verdicts = np.array(
            [reach.may_leave_safe(s, workspace, 0.2, margin=0.05) for s in states]
        )
        assert (
            scalar_verdicts
            == reach.may_leave_safe_batch(positions, speeds, workspace, 0.2, margin=0.05)
        ).all(), "batched reachability must be bit-identical to the scalar loop"
        rows.append(("may_leave_safe (2Δ)", scalar_reach, batch_reach))

        scalar_switch = _timed(
            lambda: [reach.must_switch(s, workspace, 0.2, margin=0.05) for s in states]
        )
        batch_switch = _timed(
            lambda: reach.must_switch_batch(positions, speeds, workspace, 0.2, margin=0.05)
        )
        rows.append(("must_switch (ttf)", scalar_switch, batch_switch))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table_printer(
        f"Batched safety queries: scalar loop vs numpy batch over {POINTS} states",
        ["query", "scalar [ms]", "batch [ms]", "speedup", "queries/s (batch)"],
        [
            [
                name,
                f"{scalar * 1e3:.2f}",
                f"{batch * 1e3:.3f}",
                f"{scalar / batch:.1f}x",
                f"{POINTS / batch:,.0f}",
            ]
            for name, scalar, batch in rows
        ],
    )
    for name, scalar, batch in rows:
        benchmark_gate(f"reachability-batch/{name}", batch)
        assert scalar / batch >= 5.0, (
            f"{name}: expected >=5x batch speedup at {POINTS} points, "
            f"measured {scalar / batch:.1f}x"
        )


@pytest.mark.benchmark(group="reachability-batch")
def test_occupancy_grid_vectorisation_speedup(benchmark, table_printer, benchmark_gate):
    workspace = surveillance_city().workspace
    resolution = 0.25

    def measure():
        scalar_build = _timed(
            lambda: OccupancyGrid._from_workspace_scalar(workspace, resolution=resolution),
            repeats=2,
        )
        batch_build = _timed(
            lambda: OccupancyGrid.from_workspace(workspace, resolution=resolution), repeats=2
        )
        grid = OccupancyGrid.from_workspace(workspace, resolution=resolution)
        reference = OccupancyGrid._from_workspace_scalar(workspace, resolution=resolution)
        assert (grid.occupied == reference.occupied).all(), (
            "vectorised rasterisation must mark exactly the scalar loop's cells"
        )
        dijkstra = _timed(grid._distance_to_occupied_dijkstra, repeats=2)
        chamfer = _timed(grid.distance_to_occupied, repeats=2)
        assert np.allclose(
            grid.distance_to_occupied(), grid._distance_to_occupied_dijkstra(), rtol=1e-9, atol=1e-9
        ), "chamfer transform must match the Dijkstra brushfire"
        return scalar_build, batch_build, dijkstra, chamfer, grid.shape

    scalar_build, batch_build, dijkstra, chamfer, shape = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    table_printer(
        f"Occupancy grid ({shape[0]}x{shape[1]} cells at {resolution} m): loops vs vectorised",
        ["stage", "scalar [ms]", "vectorised [ms]", "speedup"],
        [
            ["rasterise workspace", f"{scalar_build * 1e3:.1f}", f"{batch_build * 1e3:.2f}",
             f"{scalar_build / batch_build:.1f}x"],
            ["distance transform", f"{dijkstra * 1e3:.1f}", f"{chamfer * 1e3:.2f}",
             f"{dijkstra / chamfer:.1f}x"],
        ],
    )
    benchmark_gate("reachability-batch/grid-rasterise", batch_build)
    benchmark_gate("reachability-batch/distance-transform", chamfer)
    assert scalar_build / batch_build >= 5.0
    assert dijkstra / chamfer >= 5.0


def _sweep(use_query_cache: bool, monitor_window: int) -> float:
    factory = scenario_factory(
        "drone-surveillance", horizon=HORIZON, use_query_cache=use_query_cache
    )
    tester = SystematicTester(
        factory,
        strategy=RandomStrategy(seed=SEED, max_executions=SWEEP_EXECUTIONS),
        monitor_window=monitor_window,
    )
    started = time.perf_counter()
    report = tester.explore()
    elapsed = time.perf_counter() - started
    assert report.execution_count == SWEEP_EXECUTIONS
    assert report.ok
    return elapsed


@pytest.mark.benchmark(group="reachability-batch")
def test_explorer_throughput_improves(benchmark, table_printer, benchmark_gate):
    """The point of the refactor: more explored executions per second."""

    def measure():
        legacy = _sweep(use_query_cache=False, monitor_window=1)  # pre-PR configuration
        cached = _sweep(use_query_cache=True, monitor_window=1)  # current defaults
        windowed = _sweep(use_query_cache=True, monitor_window=64)  # opt-in windowing
        return legacy, cached, windowed

    legacy, cached, windowed = benchmark.pedantic(measure, rounds=1, iterations=1)
    table_printer(
        f"Explorer throughput: {SWEEP_EXECUTIONS}-execution 'drone-surveillance' sweep",
        ["configuration", "wall time [s]", "executions/s", "speedup"],
        [
            ["scalar plane, per-step monitors (pre-PR)", f"{legacy:.2f}",
             f"{SWEEP_EXECUTIONS / legacy:.0f}", "1.00x"],
            ["cached ClearanceField, per-step monitors (default)", f"{cached:.2f}",
             f"{SWEEP_EXECUTIONS / cached:.0f}", f"{legacy / cached:.2f}x"],
            ["cached ClearanceField + windowed monitors (window=64)", f"{windowed:.2f}",
             f"{SWEEP_EXECUTIONS / windowed:.0f}", f"{legacy / windowed:.2f}x"],
        ],
    )
    benchmark_gate("reachability-batch/explorer-sweep", cached)
    assert legacy / cached >= 1.1, (
        f"expected the cached plane to improve explorer throughput, "
        f"measured {legacy / cached:.2f}x"
    )
