"""Coverage-guided vs random exploration on the coverage-hostile scenarios.

Quantifies the coverage plane (PR 5) on the two workloads built for it:

* **Distinct-pair discovery** — cumulative distinct ``(vehicle, mode,
  region)`` pairs after an equal execution budget, for
  :class:`~repro.testing.strategies.CoverageGuidedStrategy` versus
  :class:`~repro.testing.strategies.RandomStrategy`, across a fixed seed
  panel.  The guided strategy must reach **strictly more** distinct pairs
  in aggregate on both scenarios (the acceptance bar of the PR); per-seed
  results are printed so regressions are attributable.

* **Time to first counterexample** — executions until the first violation
  on the breach variants.  On ``deep-menu-surveillance`` the rare breach
  option hides in a thirty-plus-option menu: the guided sweep reaches it
  within one menu sweep while uniform random shows coupon-collector
  tails, and the aggregate guided cost is asserted no worse than random.
  On ``rare-branch-geofence`` a single draw from a fourteen-option menu
  suffices, so the two strategies tie by construction — the row is
  reported for completeness, not asserted.

* **Replay fidelity** — a guided counterexample's trail replayed through
  :meth:`~repro.testing.explorer.SystematicTester.replay` must reproduce
  the execution bit-identically (same steps, violation times, messages),
  which is what makes guided-found bugs actionable.

Both sweep wall times feed the benchmark regression gate.
"""

from __future__ import annotations

import time

import pytest

from repro.testing import (
    CoverageGuidedStrategy,
    RandomStrategy,
    SystematicTester,
    scenario_factory,
)

SEEDS = (0, 1, 2, 3, 4, 5)
PAIR_BUDGET = 32
TTFC_BUDGET = 200

#: scenario name -> override that makes counterexamples reachable.
SCENARIOS = {
    "rare-branch-geofence": {"include_breach": True},
    "deep-menu-surveillance": {"include_unsafe_position": True},
}


def _strategies(seed: int, budget: int):
    return {
        "random": RandomStrategy(seed=seed, max_executions=budget),
        "guided": CoverageGuidedStrategy(seed=seed, max_executions=budget),
    }


def _distinct_pairs(scenario: str, seed: int, budget: int) -> dict:
    """Distinct pairs per strategy after ``budget`` executions (plus walls)."""
    results = {}
    for label, strategy in _strategies(seed, budget).items():
        tester = SystematicTester(scenario_factory(scenario), strategy, track_coverage=True)
        started = time.perf_counter()
        report = tester.explore()
        elapsed = time.perf_counter() - started
        assert report.execution_count == budget
        assert report.ok, f"{scenario} must be violation-free by default"
        results[label] = (len(report.coverage), elapsed)
    return results


@pytest.mark.benchmark(group="coverage-guided")
def test_distinct_pairs_per_budget(table_printer, benchmark_gate):
    """Guided reaches strictly more distinct pairs than random, equal budget."""
    for scenario in SCENARIOS:
        per_seed = {seed: _distinct_pairs(scenario, seed, PAIR_BUDGET) for seed in SEEDS}
        random_pairs = [per_seed[seed]["random"][0] for seed in SEEDS]
        guided_pairs = [per_seed[seed]["guided"][0] for seed in SEEDS]
        guided_wall = min(per_seed[seed]["guided"][1] for seed in SEEDS)
        table_printer(
            f"Distinct (vehicle, mode, region) pairs after {PAIR_BUDGET} executions — {scenario}",
            ["seed", "random", "coverage-guided"],
            [[seed, r, g] for seed, r, g in zip(SEEDS, random_pairs, guided_pairs)]
            + [["total", sum(random_pairs), sum(guided_pairs)]],
        )
        assert sum(guided_pairs) > sum(random_pairs), (
            f"{scenario}: CoverageGuidedStrategy covered {sum(guided_pairs)} pairs "
            f"across seeds {SEEDS} vs RandomStrategy's {sum(random_pairs)} at an equal "
            f"budget of {PAIR_BUDGET} executions — the coverage plane lost its edge"
        )
        benchmark_gate(f"coverage-guided/{scenario}-sweep", guided_wall)


def _ttfc(scenario: str, overrides: dict, seed: int) -> dict:
    """Executions until the first counterexample, per strategy."""
    results = {}
    for label, strategy in _strategies(seed, TTFC_BUDGET).items():
        tester = SystematicTester(scenario_factory(scenario, **overrides), strategy)
        report = tester.explore(stop_at_first_violation=True)
        counterexample = report.first_counterexample()
        assert counterexample is not None, (
            f"{scenario} with {overrides} must yield a counterexample within "
            f"{TTFC_BUDGET} executions under {label}"
        )
        results[label] = counterexample.index + 1
    return results


@pytest.mark.benchmark(group="coverage-guided")
def test_time_to_first_counterexample(table_printer):
    """Executions to the first violation on the breach variants."""
    totals = {}
    for scenario, overrides in SCENARIOS.items():
        per_seed = {seed: _ttfc(scenario, overrides, seed) for seed in SEEDS}
        random_cost = [per_seed[seed]["random"] for seed in SEEDS]
        guided_cost = [per_seed[seed]["guided"] for seed in SEEDS]
        totals[scenario] = (sum(random_cost), sum(guided_cost))
        table_printer(
            f"Executions to first counterexample — {scenario} {overrides}",
            ["seed", "random", "coverage-guided"],
            [[seed, r, g] for seed, r, g in zip(SEEDS, random_cost, guided_cost)]
            + [["total", sum(random_cost), sum(guided_cost)]],
        )
    deep_random, deep_guided = totals["deep-menu-surveillance"]
    assert deep_guided <= deep_random, (
        f"guided took {deep_guided} total executions to the deep-menu breach vs "
        f"random's {deep_random} — the menu sweep should bound the search"
    )


@pytest.mark.benchmark(group="coverage-guided")
def test_guided_counterexample_replays_bit_identically():
    """A guided-found trail replays to the identical execution."""
    tester = SystematicTester(
        scenario_factory("deep-menu-surveillance", include_unsafe_position=True),
        CoverageGuidedStrategy(seed=0, max_executions=TTFC_BUDGET),
    )
    report = tester.explore(stop_at_first_violation=True)
    counterexample = report.first_counterexample()
    assert counterexample is not None
    replayed = tester.replay(counterexample.trail, counterexample.index)
    assert replayed.steps == counterexample.steps
    assert replayed.trail == counterexample.trail
    assert [
        (violation.time, violation.monitor, violation.message)
        for violation in replayed.violations
    ] == [
        (violation.time, violation.monitor, violation.message)
        for violation in counterexample.violations
    ]
