"""Ablation — the size of φ_safer (Remark 3.3: switching hysteresis).

Choosing φ_safer close to the switching boundary returns control to the
advanced controller sooner but risks rapid back-and-forth switching;
pushing it further inside φ_safe adds hysteresis at the cost of more time
under the conservative controller.  This ablation sweeps the extra margin
added to φ_safer and reports switching counts and safe-controller usage.
"""

from __future__ import annotations

import pytest

from repro.apps import StackConfig, build_stack
from repro.simulation import waypoint_range

MARGINS = (0.1, 0.5, 1.5)
MISSION_TIMEOUT = 400.0


def _run_with_margin(margin: float):
    world = waypoint_range()
    config = StackConfig(
        world=world,
        goals=world.surveillance_points,
        loop_goals=False,
        planner="straight",
        protect_battery=False,
        safer_extra_margin=margin,
        seed=3,
    )
    metrics, _ = build_stack(config).run(duration=MISSION_TIMEOUT)
    return metrics


@pytest.mark.benchmark(group="ablation")
def test_ablation_safer_margin(benchmark, table_printer):
    results = benchmark.pedantic(lambda: {margin: _run_with_margin(margin) for margin in MARGINS}, rounds=1, iterations=1)
    rows = []
    for margin, metrics in results.items():
        switches = metrics.total_disengagements + metrics.total_reengagements
        rows.append(
            [
                f"{margin:.1f} m",
                f"{metrics.mission_time:.1f}",
                metrics.total_disengagements,
                switches,
                f"{1.0 - metrics.overall_ac_fraction():.2f}",
                metrics.collided,
            ]
        )
    table_printer(
        "Ablation: φ_safer margin (hysteresis between R4 and R5, Figure 10)",
        ["extra margin", "mission time [s]", "disengagements", "total switches", "SC time fraction", "collided"],
        rows,
    )
    # Safety holds for every margin; the margin only trades performance for
    # switching frequency.
    assert all(not metrics.collided for metrics in results.values())
    # Hysteresis shape: the largest margin never switches more often than the
    # smallest one.
    smallest, largest = min(MARGINS), max(MARGINS)
    switches_small = results[smallest].total_disengagements + results[smallest].total_reengagements
    switches_large = results[largest].total_disengagements + results[largest].total_reengagements
    assert switches_large <= switches_small + 1
