"""Multi-drone shared-airspace workloads: fleet exploration and N² separation.

Quantifies the two halves of the multi-drone PR:

* **Fleet exploration scaling** — executions/s of the
  ``multi-drone-surveillance`` scenario at N = 1, 2, 3 composed protected
  stacks under the reset-and-reuse explorer.  The N=1 row doubles as a
  sanity anchor: a fleet of one is bit-identical to ``drone-surveillance``
  (proven in ``tests/testing/test_multi_drone_differential.py``), so its
  throughput tracks the single-drone sweep.

* **Pairwise separation: batched vs scalar** — a
  :class:`~repro.core.monitor.SeparationMonitor` window of S samples ×
  N vehicles flushed through one batched N² query
  (:func:`~repro.geometry.pairwise_separations`) versus the scalar
  pairwise loop.  Violation sequences must be identical (the batch plane
  is bit-exact by construction) and the batched flush at least 2x faster
  (≈4x measured on the reference machine).

Both wall times feed the benchmark regression gate.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.core import MonitorSuite, SeparationMonitor
from repro.dynamics import DroneState
from repro.geometry import Vec3
from repro.testing import RandomStrategy, SystematicTester, scenario_factory

FLEET_SIZES = (1, 2, 3)
SWEEP_EXECUTIONS = 60
SWEEP_HORIZON = 1.0
SWEEP_SEED = 11
SWEEP_REPEATS = 3

SEPARATION_VEHICLES = 8
SEPARATION_SAMPLES = 2048
SEPARATION_MINIMUM = 6.0
SEPARATION_REPEATS = 3


# --------------------------------------------------------------------- #
# fleet exploration scaling
# --------------------------------------------------------------------- #
def _fleet_sweep(drones: int) -> float:
    factory = scenario_factory(
        "multi-drone-surveillance", drones=drones, horizon=SWEEP_HORIZON
    )
    tester = SystematicTester(
        factory,
        strategy=RandomStrategy(seed=SWEEP_SEED, max_executions=SWEEP_EXECUTIONS),
    )
    started = time.perf_counter()
    report = tester.explore()
    elapsed = time.perf_counter() - started
    assert report.execution_count == SWEEP_EXECUTIONS
    assert report.ok  # the default menus are conflict-free for up to 3 drones
    return elapsed


@pytest.mark.benchmark(group="multi-drone")
def test_fleet_exploration_scaling(table_printer, benchmark_gate):
    """Executions/s as the shared airspace grows from 1 to 3 protected stacks."""
    _fleet_sweep(FLEET_SIZES[0])  # warm the per-process world/clearance memos
    walls = {
        drones: min(_fleet_sweep(drones) for _ in range(SWEEP_REPEATS))
        for drones in FLEET_SIZES
    }
    baseline = walls[FLEET_SIZES[0]]
    table_printer(
        f"Fleet exploration: {SWEEP_EXECUTIONS}-execution 'multi-drone-surveillance' sweeps",
        ["drones", "nodes/system", "wall time [s]", "executions/s", "vs 1 drone"],
        [
            [
                drones,
                6 * drones,  # surveillance, planner, relay, MP module (ac/sc/dm)
                f"{wall:.3f}",
                f"{SWEEP_EXECUTIONS / wall:.0f}",
                f"{wall / baseline:.2f}x",
            ]
            for drones, wall in walls.items()
        ],
    )
    benchmark_gate("multi-drone/explorer-2-drones", walls[2])
    if os.environ.get("BENCH_UPDATE_REFERENCE") != "1":
        # Composition overhead must stay roughly linear: a 3-stack airspace
        # may not cost more than ~6x the single stack per execution
        # (generous slack over the ~3x node count).  The ~40 ms 1-drone
        # baseline is too easily perturbed on loaded shared runners, so —
        # like bench_reset_reuse's machine-relative bar — the assertion is
        # skipped when references are being re-recorded (the CI smoke run).
        assert walls[3] <= 6.0 * baseline, (
            f"3-drone sweep {walls[3]:.3f}s vs 1-drone {baseline:.3f}s — "
            "fleet composition overhead is no longer near-linear"
        )


# --------------------------------------------------------------------- #
# pairwise separation: one batched N² query per window vs the scalar loop
# --------------------------------------------------------------------- #
class _StubEngine:
    """The minimal engine surface the monitor reads: topics and the clock."""

    def __init__(self) -> None:
        self.current_time = 0.0
        self.board = {}

    def read_topic(self, topic):
        return self.board.get(topic)


def _separation_window():
    topics = [f"drone{i}/localPosition" for i in range(SEPARATION_VEHICLES)]
    rng = random.Random(0)
    samples = []
    for step in range(SEPARATION_SAMPLES):
        values = {
            topic: DroneState(
                position=Vec3(rng.uniform(0.0, 50.0), rng.uniform(0.0, 50.0), 2.0)
            )
            for topic in topics
        }
        samples.append((0.1 * step, values))
    return topics, samples


def _flush_window(topics, samples, use_batch: bool):
    monitor = SeparationMonitor(
        topics, min_separation=SEPARATION_MINIMUM, use_batch=use_batch
    )
    suite = MonitorSuite([monitor])
    engine = _StubEngine()
    for sample_time, values in samples:
        engine.current_time = sample_time
        engine.board = values
        suite.capture_all(engine)
    started = time.perf_counter()
    violations = suite.flush()
    elapsed = time.perf_counter() - started
    return elapsed, [(violation.time, violation.message) for violation in violations]


@pytest.mark.benchmark(group="multi-drone")
def test_separation_batched_vs_scalar(table_printer, benchmark_gate):
    """One batched N² flush ≥ 2x the scalar pair loop, identical violations."""
    topics, samples = _separation_window()
    pair_count = SEPARATION_VEHICLES * (SEPARATION_VEHICLES - 1) // 2
    scalar_wall, scalar_violations = min(
        (_flush_window(topics, samples, use_batch=False) for _ in range(SEPARATION_REPEATS)),
        key=lambda result: result[0],
    )
    batched_wall, batched_violations = min(
        (_flush_window(topics, samples, use_batch=True) for _ in range(SEPARATION_REPEATS)),
        key=lambda result: result[0],
    )
    assert batched_violations == scalar_violations, (
        "batched separation verdicts diverged from the scalar pairwise loop"
    )
    table_printer(
        f"Pairwise separation: {SEPARATION_SAMPLES}-sample window, "
        f"{SEPARATION_VEHICLES} vehicles ({pair_count} pairs/sample)",
        ["plane", "wall time [ms]", "pair checks/s", "speedup"],
        [
            [
                "scalar pair loop",
                f"{scalar_wall * 1e3:.1f}",
                f"{SEPARATION_SAMPLES * pair_count / scalar_wall:,.0f}",
                "1.0x",
            ],
            [
                "batched N^2 query",
                f"{batched_wall * 1e3:.1f}",
                f"{SEPARATION_SAMPLES * pair_count / batched_wall:,.0f}",
                f"{scalar_wall / batched_wall:.1f}x",
            ],
        ],
    )
    benchmark_gate("multi-drone/separation-batched", batched_wall)
    assert scalar_wall / batched_wall >= 2.0, (
        f"expected >= 2x on the batched separation flush, measured "
        f"{scalar_wall / batched_wall:.1f}x"
    )
