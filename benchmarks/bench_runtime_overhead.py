"""Micro-benchmarks — runtime overhead of the SOTER machinery itself.

Not a paper table, but supporting evidence for the claim that the generated
decision module and the discrete-event runtime are cheap enough to run at
the controllers' rates: it measures the per-evaluation cost of the
decision-module switching logic (ttf_2Δ + φ_safer on the real workspace)
and the cost of one discrete step of the full drone system.
"""

from __future__ import annotations

import pytest

from repro.apps import StackConfig, build_stack
from repro.control import AggressiveTracker
from repro.apps.modules import build_safe_motion_primitive
from repro.dynamics import BoundedDoubleIntegrator, DoubleIntegratorParams, DroneState
from repro.geometry import Vec3
from repro.simulation import surveillance_city, waypoint_range


@pytest.mark.benchmark(group="overhead")
def test_decision_module_evaluation_cost(benchmark):
    """One DM evaluation (Figure 9 logic on the real city workspace)."""
    world = surveillance_city()
    model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))
    module = build_safe_motion_primitive(
        workspace=world.workspace,
        model=model,
        advanced_tracker=AggressiveTracker(cruise_speed=3.5, max_acceleration=6.0),
    )
    from repro.core import DecisionModule

    dm = DecisionModule(module.spec)
    state = DroneState(position=Vec3(25.0, 4.0, 2.0), velocity=Vec3(3.0, 0.0, 0.0))
    inputs = {"localPosition": state, "activePlan": None}

    def evaluate():
        dm.step(dm.evaluations * module.spec.delta, inputs)

    benchmark(evaluate)
    assert dm.evaluations > 0


@pytest.mark.benchmark(group="overhead")
def test_full_stack_simulation_step_cost(benchmark):
    """Cost of one second of simulated flight of the full protected stack."""
    world = waypoint_range()
    config = StackConfig(
        world=world,
        goals=world.surveillance_points,
        loop_goals=True,
        planner="straight",
        protect_battery=True,
        seed=0,
    )
    stack = build_stack(config)
    simulation = stack.simulation
    state = {"until": 0.0}

    def advance_one_second():
        state["until"] += 1.0
        simulation.engine.run_until(state["until"], environment=simulation._environment)

    benchmark(advance_one_second)
    assert simulation.engine.stats.node_firings > 0
