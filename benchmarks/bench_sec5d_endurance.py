"""Section V-D — rigorous simulation campaign (endurance table).

Paper result: over 104 hours of software-in-the-loop simulation
(~1505 km flown) the RTA-protected stack recorded 109 disengagements where
an SC prevented a potential failure, the advanced controllers stayed in
control > 96 % of the time, and the only 34 crashes were caused by the safe
controller not being scheduled in time after a switch (an OS-scheduling
effect, expected to disappear on an RTOS).

The benchmark runs a scaled-down randomized campaign (a handful of missions
instead of 104 hours — the scaling is recorded in EXPERIMENTS.md) in three
scheduler configurations:

* an idealised real-time scheduler (no crashes expected),
* a jittery best-effort OS scheduler (still safe at realistic jitter), and
* a degraded scheduler that starves the safe controller after the switch,
  reproducing the paper's only crash mode.
"""

from __future__ import annotations

import pytest

from repro.apps import CampaignMetrics, StackConfig, build_stack
from repro.runtime import JitteryOSScheduler, OverloadScheduler, PerfectScheduler
from repro.simulation import surveillance_city, waypoint_range

MISSIONS = 4
GOALS_PER_MISSION = 4
MISSION_TIMEOUT = 250.0


def _city_campaign(scheduler_factory):
    campaign = CampaignMetrics()
    world = surveillance_city()
    for seed in range(MISSIONS):
        config = StackConfig(
            world=world,
            goals=[],
            random_goals=GOALS_PER_MISSION,
            loop_goals=False,
            planner="astar",
            tracker="learned",
            protect_battery=True,
            scheduler=scheduler_factory(seed),
            seed=seed,
        )
        metrics, _ = build_stack(config).run(duration=MISSION_TIMEOUT)
        campaign.add(metrics)
    return campaign


def _starved_sc_missions():
    """Missions where the SC is starved after the switch (the paper's crash mode)."""
    crashes = 0
    world = waypoint_range()
    from repro.geometry import Vec3

    for seed in range(MISSIONS):
        config = StackConfig(
            world=world,
            goals=world.surveillance_points,
            loop_goals=False,
            planner="straight",
            protect_battery=False,
            start_position=Vec3(20.0, 7.0, 2.0),
            scheduler=OverloadScheduler(
                starved_nodes=["SafeMotionPrimitive.sc"], start_time=0.0, end_time=1e9
            ),
            seed=seed,
        )
        metrics, _ = build_stack(config).run(duration=120.0)
        crashes += int(metrics.crashed)
    return crashes


@pytest.mark.benchmark(group="sec5d")
def test_sec5d_endurance_campaign(benchmark, table_printer):
    def run_campaigns():
        perfect = _city_campaign(lambda seed: PerfectScheduler())
        jittery = _city_campaign(
            lambda seed: JitteryOSScheduler(max_jitter=0.03, drop_rate=0.01, seed=seed)
        )
        starved_crashes = _starved_sc_missions()
        return perfect, jittery, starved_crashes

    perfect, jittery, starved_crashes = benchmark.pedantic(run_campaigns, rounds=1, iterations=1)
    table_printer(
        "Section V-D: endurance campaign (scaled; paper: 104 h, 1505 km, 109 disengagements, "
        "34 crashes, AC > 96 %)",
        ["scheduler", "missions", "flight time [s]", "distance [km]", "disengagements", "AC fraction", "crashes"],
        [
            ["idealised real-time", perfect.mission_count, f"{perfect.total_flight_time:.0f}",
             f"{perfect.total_distance / 1000.0:.2f}", perfect.total_disengagements,
             f"{perfect.mean_ac_fraction():.1%}", perfect.crashes],
            ["jittery OS timers", jittery.mission_count, f"{jittery.total_flight_time:.0f}",
             f"{jittery.total_distance / 1000.0:.2f}", jittery.total_disengagements,
             f"{jittery.mean_ac_fraction():.1%}", jittery.crashes],
            ["SC starved after switch", MISSIONS, "-", "-", "-", "-", starved_crashes],
        ],
    )
    # Shape: with the RTA in place and the SC scheduled on time there are no
    # crashes, disengagements do occur, and the AC stays in control for the
    # overwhelming majority of the time; crashes appear only when the SC is
    # not scheduled after the DM switches.
    assert perfect.crashes == 0
    assert jittery.crashes == 0
    assert perfect.total_disengagements + jittery.total_disengagements >= 1
    assert perfect.mean_ac_fraction() > 0.9
    assert starved_crashes >= 1
