"""Benchmark: the zero-rebuild exploration hot path and batched falsification.

Quantifies the two halves of the reset-and-reuse PR:

* **Explorer throughput** — the ``drone-surveillance`` sweep (identical
  configuration to PR 2's ``reachability-batch/explorer-sweep``: 120
  executions, 2 s horizon, seed 11) under fresh-build-per-execution
  (``reuse_instances=False``) versus the default reset-and-reuse path.
  The acceptance bar is ≥ 2x executions/s over the PR 2 fresh-build
  baseline recorded in ``benchmark_reference.json`` at PR 2 time.

* **Well-formedness falsification** — P2a/P2b/P3 of the motion-primitive
  module validated by sampling, scalar loops versus the batched plane
  (structure-of-arrays SC rollouts through ``command_batch``/
  ``step_batch``, one-shot ``may_leave_safe_batch``).  The acceptance bar
  is ≥ 10x with check verdicts identical to the scalar loops.

Both wall times feed the benchmark regression gate, so future slowdowns
of either hot path fail the benchmark run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.apps.modules import DroneClosedLoopModel, build_safe_motion_primitive
from repro.control import AggressiveTracker
from repro.core import CheckerOptions, WellFormednessChecker
from repro.dynamics import BoundedDoubleIntegrator, DoubleIntegratorParams
from repro.simulation import surveillance_city
from repro.testing import RandomStrategy, SystematicTester, scenario_factory

#: The PR 2 fresh-build baseline: the "reachability-batch/explorer-sweep"
#: reference wall time recorded in benchmark_reference.json when PR 2
#: landed (120 executions at 371 exec/s → 0.3347 s), measured on the same
#: reference machine this file's gate references were recorded on.
PR2_SWEEP_SECONDS = 0.3347

SWEEP_EXECUTIONS = 120
SWEEP_HORIZON = 2.0
SWEEP_SEED = 11
SWEEP_REPEATS = 3

FALSIFICATION_SAMPLES = 256
FALSIFICATION_HORIZON = 6.0
FALSIFICATION_SEED = 5


def _sweep(reuse_instances: bool) -> float:
    factory = scenario_factory("drone-surveillance", horizon=SWEEP_HORIZON)
    tester = SystematicTester(
        factory,
        strategy=RandomStrategy(seed=SWEEP_SEED, max_executions=SWEEP_EXECUTIONS),
        reuse_instances=reuse_instances,
    )
    started = time.perf_counter()
    report = tester.explore()
    elapsed = time.perf_counter() - started
    assert report.execution_count == SWEEP_EXECUTIONS
    assert report.ok
    return elapsed


@pytest.mark.benchmark(group="reset-reuse")
def test_explorer_reset_reuse_throughput(table_printer, benchmark_gate):
    """Reset-and-reuse ≥ 2x the PR 2 fresh-build explorer baseline."""
    _sweep(True)  # warm the per-process world/clearance memos once
    fresh = min(_sweep(False) for _ in range(SWEEP_REPEATS))
    reset = min(_sweep(True) for _ in range(SWEEP_REPEATS))
    table_printer(
        f"Explorer throughput: {SWEEP_EXECUTIONS}-execution 'drone-surveillance' sweep",
        ["configuration", "wall time [s]", "executions/s", "vs PR 2 baseline"],
        [
            ["PR 2 fresh-build baseline (recorded)", f"{PR2_SWEEP_SECONDS:.3f}",
             f"{SWEEP_EXECUTIONS / PR2_SWEEP_SECONDS:.0f}", "1.00x"],
            ["fresh build per execution (reuse_instances=False)", f"{fresh:.3f}",
             f"{SWEEP_EXECUTIONS / fresh:.0f}", f"{PR2_SWEEP_SECONDS / fresh:.2f}x"],
            ["reset-and-reuse (default)", f"{reset:.3f}",
             f"{SWEEP_EXECUTIONS / reset:.0f}", f"{PR2_SWEEP_SECONDS / reset:.2f}x"],
        ],
    )
    benchmark_gate("reset-reuse/explorer-fresh", fresh)
    benchmark_gate("reset-reuse/explorer-reset", reset)
    if os.environ.get("BENCH_UPDATE_REFERENCE") != "1":
        # The pinned PR 2 wall time was recorded on the reference machine;
        # when references are being re-recorded elsewhere, only the
        # machine-relative assertions below are meaningful.
        assert PR2_SWEEP_SECONDS / reset >= 2.0, (
            f"expected >= 2x over the PR 2 fresh-build baseline, measured "
            f"{PR2_SWEEP_SECONDS / reset:.2f}x ({SWEEP_EXECUTIONS / reset:.0f} exec/s)"
        )
    assert reset <= fresh * 1.05, "reset-and-reuse should never lose to fresh builds"


def _falsification_pass(use_batch: bool):
    world = surveillance_city()
    model = BoundedDoubleIntegrator(
        DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0)
    )
    module = build_safe_motion_primitive(world.workspace, model, AggressiveTracker())
    closed_loop = DroneClosedLoopModel(
        module, model, world.workspace, seed=FALSIFICATION_SEED
    )
    checker = WellFormednessChecker(
        closed_loop,
        CheckerOptions(
            samples=FALSIFICATION_SAMPLES,
            p2a_horizon=FALSIFICATION_HORIZON,
            p2b_max_time=FALSIFICATION_HORIZON,
            trust_certificates=False,
            use_batch=use_batch,
        ),
    )
    timings = {}
    results = {}
    for name, check in (
        ("P2a", checker.check_p2a),
        ("P2b", checker.check_p2b),
        ("P3", checker.check_p3),
    ):
        started = time.perf_counter()
        results[name] = check(module.spec)
        timings[name] = time.perf_counter() - started
    return results, timings


@pytest.mark.benchmark(group="reset-reuse")
def test_wellformed_batched_falsification(table_printer, benchmark_gate):
    """Batched P2a/P2b/P3 ≥ 10x the scalar loops, identical verdicts."""
    scalar_results, scalar_times = _falsification_pass(use_batch=False)
    batch_results, batch_times = _falsification_pass(use_batch=True)
    for name in ("P2a", "P2b", "P3"):
        scalar, batch = scalar_results[name], batch_results[name]
        assert (scalar.passed, scalar.evidence, scalar.detail) == (
            batch.passed, batch.evidence, batch.detail,
        ), f"{name}: batched verdict diverged from the scalar check"
    rows = [
        [
            name,
            f"{scalar_times[name] * 1e3:.0f}",
            f"{batch_times[name] * 1e3:.0f}",
            f"{scalar_times[name] / batch_times[name]:.1f}x",
            "PASS" if batch_results[name].passed else "FAIL",
        ]
        for name in ("P2a", "P2b", "P3")
    ]
    scalar_total = sum(scalar_times.values())
    batch_total = sum(batch_times.values())
    rows.append(
        ["total", f"{scalar_total * 1e3:.0f}", f"{batch_total * 1e3:.0f}",
         f"{scalar_total / batch_total:.1f}x", ""]
    )
    table_printer(
        f"Well-formedness falsification ({FALSIFICATION_SAMPLES} samples, "
        f"{FALSIFICATION_HORIZON}s rollouts): scalar vs batched",
        ["check", "scalar [ms]", "batched [ms]", "speedup", "verdict"],
        rows,
    )
    benchmark_gate("reset-reuse/wellformed-batched", batch_total)
    assert scalar_total / batch_total >= 10.0, (
        f"expected >= 10x on batched P2a/P2b/P3, measured {scalar_total / batch_total:.1f}x"
    )
