"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the SOTER paper's
evaluation (Section V) on a scaled-down workload and prints the rows it
measured next to the values the paper reports, so the qualitative shape
can be compared at a glance.  EXPERIMENTS.md records one full set of
measured numbers.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Sequence

import pytest


import pathlib

#: Every table a benchmark prints is also appended here, so the regenerated
#: rows survive pytest's output capturing and can be pasted into EXPERIMENTS.md.
TABLE_LOG = pathlib.Path(__file__).resolve().parent.parent / "benchmark_tables.txt"

#: Per-benchmark reference wall times (seconds), stored next to the table
#: log.  ``gate_benchmark`` compares fresh measurements against these and
#: fails the benchmark run on a >2x slowdown — the benchmark CI gate.
REFERENCE_PATH = TABLE_LOG.parent / "benchmark_reference.json"

#: A measurement this many times slower than its reference fails the run.
REGRESSION_FACTOR = 2.0


def _load_references() -> dict:
    if REFERENCE_PATH.exists():
        return json.loads(REFERENCE_PATH.read_text(encoding="utf-8"))
    return {}


def gate_benchmark(name: str, seconds: float) -> None:
    """Record or check one benchmark measurement against the stored reference.

    * No stored reference for ``name`` (or ``BENCH_UPDATE_REFERENCE=1`` in
      the environment): the measurement becomes the new reference.
    * Otherwise the run fails when the measurement exceeds the reference
      by more than :data:`REGRESSION_FACTOR` — so a hot path that silently
      doubled its cost turns the benchmark suite red instead of quietly
      appending a worse table.
    """
    references = _load_references()
    reference = references.get(name)
    if reference is None or os.environ.get("BENCH_UPDATE_REFERENCE") == "1":
        references[name] = round(float(seconds), 4)
        REFERENCE_PATH.write_text(
            json.dumps(references, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        return
    if seconds > REGRESSION_FACTOR * reference:
        pytest.fail(
            f"benchmark {name!r} regressed: {seconds:.3f}s measured vs "
            f"{reference:.3f}s reference (>{REGRESSION_FACTOR:.0f}x slowdown); "
            "rerun with BENCH_UPDATE_REFERENCE=1 if the change is intentional"
        )


@pytest.fixture
def benchmark_gate():
    """Fixture handing benchmarks the regression gate."""
    return gate_benchmark


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a small aligned table and append it to ``benchmark_tables.txt``."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(column) for column in header]
    for row in rows:
        widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
    line = "  ".join(name.ljust(width) for name, width in zip(header, widths))
    lines = [f"\n=== {title} ===", line, "-" * len(line)]
    lines.extend(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in rows
    )
    text = "\n".join(lines)
    print(text)
    with TABLE_LOG.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture
def table_printer():
    """Fixture handing benchmarks the table printer."""
    return print_table
