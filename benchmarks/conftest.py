"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the SOTER paper's
evaluation (Section V) on a scaled-down workload and prints the rows it
measured next to the values the paper reports, so the qualitative shape
can be compared at a glance.  EXPERIMENTS.md records one full set of
measured numbers.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import pytest


import pathlib

#: Every table a benchmark prints is also appended here, so the regenerated
#: rows survive pytest's output capturing and can be pasted into EXPERIMENTS.md.
TABLE_LOG = pathlib.Path(__file__).resolve().parent.parent / "benchmark_tables.txt"


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a small aligned table and append it to ``benchmark_tables.txt``."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(column) for column in header]
    for row in rows:
        widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
    line = "  ".join(name.ljust(width) for name, width in zip(header, widths))
    lines = [f"\n=== {title} ===", line, "-" * len(line)]
    lines.extend(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)) for row in rows
    )
    text = "\n".join(lines)
    print(text)
    with TABLE_LOG.open("a", encoding="utf-8") as handle:
        handle.write(text + "\n")


@pytest.fixture
def table_printer():
    """Fixture handing benchmarks the table printer."""
    return print_table
