"""Benchmark: the fault plane's cost — dormant overhead and the full differential.

Two measurements, both feeding the benchmark regression gate:

* **Dormant overhead.**  ``fault-injected-surveillance`` is byte-for-byte
  the ``drone-surveillance`` stack plus the fault plane (the tracker
  behind a ``ChoiceFaultInjector``, the position topic behind the
  ``TopicFaultGate``).  With every fault window pushed beyond the horizon
  no choice is ever drawn and no fault fires — the sweep measures pure
  plumbing: one wrapper step per tracker firing and one gate lookup per
  publish.  The bar: ≤ 1.5x the plain stack, measured in-process, so
  "faults cost ~nothing until they fire" stays a gated property rather
  than a hope.
* **Resilience differential.**  Wall time of the full
  ``assert_rta_resilient`` protected/unprotected exhaustive sweep on
  ``fault-injected-planner`` (2 x 9 executions plus the replay
  confirmation) — the CI smoke job's workload, gated so the harness
  itself stays cheap enough to run on every push.
"""

from __future__ import annotations

import time

import pytest

from repro.testing import (
    RandomStrategy,
    SystematicTester,
    assert_rta_resilient,
    scenario_factory,
)

SWEEP_EXECUTIONS = 128
SWEEP_HORIZON = 1.0
SWEEP_SEED = 11
SWEEP_REPEATS = 3
OVERHEAD_BAR = 1.5
#: Fault windows that never open within the horizon: the plan is wired
#: in but dormant, so the sweep exercises only the no-fault hot path.
DORMANT_WINDOWS = ((100.0, 101.0),)


def _sweep(factory):
    tester = SystematicTester(
        factory,
        RandomStrategy(seed=SWEEP_SEED, max_executions=SWEEP_EXECUTIONS),
        max_permuted=1,
        reuse_instances=True,
    )
    started = time.perf_counter()
    report = tester.explore()
    elapsed = time.perf_counter() - started
    assert report.execution_count == SWEEP_EXECUTIONS
    assert report.ok
    return elapsed, report


@pytest.mark.benchmark(group="faults")
def test_dormant_fault_plan_overhead(table_printer, benchmark_gate):
    """A wired-but-dormant fault plan costs <= 1.5x the plain stack."""
    plain_factory = scenario_factory("drone-surveillance", horizon=SWEEP_HORIZON)
    dormant_factory = scenario_factory(
        "fault-injected-surveillance",
        horizon=SWEEP_HORIZON,
        tracker_windows=DORMANT_WINDOWS,
        position_windows=DORMANT_WINDOWS,
    )
    _sweep(plain_factory)  # warm the per-process world/clearance memos once
    plain = dormant = float("inf")
    plain_report = dormant_report = None
    for _ in range(SWEEP_REPEATS):
        elapsed, plain_report = _sweep(plain_factory)
        plain = min(plain, elapsed)
        elapsed, dormant_report = _sweep(dormant_factory)
        dormant = min(dormant, elapsed)
    # Dormant windows draw no choices: both sweeps run the same trails
    # and step counts — the comparison is plumbing cost only.
    assert [r.steps for r in dormant_report.executions] == [
        r.steps for r in plain_report.executions
    ]
    overhead = dormant / plain
    table_printer(
        f"Fault-plane dormant overhead: {SWEEP_EXECUTIONS}-execution random sweep "
        f"(horizon {SWEEP_HORIZON:.0f} s, windows beyond horizon)",
        ["configuration", "wall time [s]", "executions/s", "relative"],
        [
            ["plain drone-surveillance", f"{plain:.3f}",
             f"{SWEEP_EXECUTIONS / plain:.0f}", "1.00x"],
            ["fault plan wired, dormant", f"{dormant:.3f}",
             f"{SWEEP_EXECUTIONS / dormant:.0f}", f"{overhead:.2f}x"],
        ],
    )
    benchmark_gate("faults/plain-sweep", plain)
    benchmark_gate("faults/dormant-sweep", dormant)
    assert overhead <= OVERHEAD_BAR, (
        f"dormant fault plan costs {overhead:.2f}x the plain stack "
        f"(bar: {OVERHEAD_BAR:.1f}x) — the no-fault path regressed"
    )


@pytest.mark.benchmark(group="faults")
def test_resilience_differential_wall_time(table_printer, benchmark_gate):
    """The full protected/unprotected exhaustive differential stays cheap."""
    protected = scenario_factory("fault-injected-planner", protected=True)
    unprotected = scenario_factory("fault-injected-planner", protected=False)
    started = time.perf_counter()
    report = assert_rta_resilient(protected, unprotected, max_executions=256)
    elapsed = time.perf_counter() - started
    assert report.confirmed
    executions = report.protected.execution_count + report.unprotected.execution_count
    table_printer(
        "RTA resilience differential: exhaustive fault sweep, both stacks",
        ["leg", "executions", "violations"],
        [
            ["protected", report.protected.execution_count,
             report.protected.total_violations],
            ["unprotected", report.unprotected.execution_count,
             len(report.unprotected.failing)],
            [f"  total wall time {elapsed:.2f} s "
             f"({executions / elapsed:.0f} exec/s, replay-confirmed)", "", ""],
        ],
    )
    benchmark_gate("faults/resilience-differential", elapsed)
