"""Ablation — the decision-module period Δ (Remark 3.3 / Figure 10).

The paper discusses the trade-off but leaves the choice of Δ to the
programmer: a large Δ makes ttf_2Δ and φ_safer conservative (the switching
boundary moves away from the obstacles, the safe controller is used more
and the mission slows down); a small Δ maximises advanced-controller usage
but switches closer to the obstacles.  This ablation sweeps Δ on the g1..g4
mission and reports mission time, disengagements, and SC usage.
"""

from __future__ import annotations

import pytest

from repro.apps import StackConfig, build_stack
from repro.simulation import waypoint_range

DELTAS = (0.05, 0.1, 0.2)
MISSION_TIMEOUT = 400.0


def _run_with_delta(delta: float):
    world = waypoint_range()
    config = StackConfig(
        world=world,
        goals=world.surveillance_points,
        loop_goals=False,
        planner="straight",
        protect_battery=False,
        mp_delta=delta,
        mp_period=min(0.05, delta),
        seed=3,
    )
    metrics, _ = build_stack(config).run(duration=MISSION_TIMEOUT)
    return metrics


@pytest.mark.benchmark(group="ablation")
def test_ablation_decision_period(benchmark, table_printer):
    results = benchmark.pedantic(lambda: {delta: _run_with_delta(delta) for delta in DELTAS}, rounds=1, iterations=1)
    rows = []
    for delta, metrics in results.items():
        rows.append(
            [
                f"{delta * 1000:.0f} ms",
                f"{metrics.mission_time:.1f}",
                metrics.total_disengagements,
                f"{1.0 - metrics.overall_ac_fraction():.2f}",
                metrics.collided,
                metrics.completed,
            ]
        )
    table_printer(
        "Ablation: decision-module period Δ on the g1..g4 mission",
        ["Δ", "mission time [s]", "disengagements", "SC time fraction", "collided", "completed"],
        rows,
    )
    # Safety must hold for every Δ (Theorem 3.1 does not depend on its value).
    assert all(not metrics.collided for metrics in results.values())
    # Small and moderate Δ complete the mission; a very large Δ may be so
    # conservative that the mission stalls near obstacle-adjacent goals —
    # that is exactly the over-conservatism Remark 3.3 warns about, so it is
    # reported in the table rather than asserted away.
    assert results[min(DELTAS)].completed
    # Conservatism shape: a larger Δ never uses the safe controller less than
    # the smallest Δ does.
    sc_fraction = {delta: 1.0 - metrics.overall_ac_fraction() for delta, metrics in results.items()}
    assert sc_fraction[max(DELTAS)] >= sc_fraction[min(DELTAS)] - 0.05
