"""Figure 5 — third-party / learned low-level controllers are unsafe without RTA.

The paper flies the PX4 controller on the g1..g4 square and a data-driven
controller on a figure-eight loop, and observes unsafe excursions that end
in (near-)collisions.  This benchmark runs the same two workloads with the
untrusted controllers *unprotected* and measures how often they violate
φ_obs, then repeats them under the RTA-protected motion primitive, which
must eliminate the violations.
"""

from __future__ import annotations

import pytest

from repro.apps import StackConfig, build_stack
from repro.simulation import waypoint_range

SEEDS = range(4)
MISSION_TIMEOUT = 200.0


def _square_mission(protected: bool, tracker: str, seed: int):
    world = waypoint_range()
    config = StackConfig(
        world=world,
        goals=world.surveillance_points,
        loop_goals=False,
        planner="straight",
        protect_motion_primitive=protected,
        protect_battery=False,
        tracker=tracker,
        seed=seed,
    )
    return build_stack(config).run(duration=MISSION_TIMEOUT)


def _campaign(protected: bool, tracker: str):
    collisions = 0
    completions = 0
    min_clearance = float("inf")
    for seed in SEEDS:
        metrics, _ = _square_mission(protected, tracker, seed)
        collisions += int(metrics.collided)
        completions += int(metrics.completed)
        min_clearance = min(min_clearance, metrics.min_clearance)
    return {"collisions": collisions, "completions": completions, "min_clearance": min_clearance}


@pytest.mark.benchmark(group="fig5")
def test_fig5_untrusted_third_party_controller(benchmark, table_printer):
    """Aggressive (PX4-like) tracker: unsafe alone, safe under the RTA module."""
    unprotected = benchmark.pedantic(lambda: _campaign(protected=False, tracker="aggressive"), rounds=1, iterations=1)
    protected = _campaign(protected=True, tracker="aggressive")
    table_printer(
        "Figure 5 (right): PX4-like controller on the g1..g4 square",
        ["configuration", "collisions", f"missions (n={len(list(SEEDS))})", "min clearance [m]"],
        [
            ["unprotected AC (paper: unsafe excursions)", unprotected["collisions"],
             unprotected["completions"], f"{unprotected['min_clearance']:.2f}"],
            ["RTA-protected (paper: safe)", protected["collisions"],
             protected["completions"], f"{protected['min_clearance']:.2f}"],
        ],
    )
    # Shape: the unprotected controller collides at least once; the RTA never does.
    assert unprotected["collisions"] >= 1
    assert protected["collisions"] == 0
    assert protected["completions"] == len(list(SEEDS))


@pytest.mark.benchmark(group="fig5")
def test_fig5_learned_controller(benchmark, table_printer):
    """Learned (data-driven) tracker: occasional dangerous deviations, caught by the RTA."""

    def learned_campaigns():
        return (
            _campaign(protected=False, tracker="learned"),
            _campaign(protected=True, tracker="learned"),
        )

    unprotected, protected = benchmark.pedantic(learned_campaigns, rounds=1, iterations=1)
    table_printer(
        "Figure 5 (left): learned controller on the waypoint loop",
        ["configuration", "collisions", "min clearance [m]"],
        [
            ["unprotected learned controller", unprotected["collisions"], f"{unprotected['min_clearance']:.2f}"],
            ["RTA-protected learned controller", protected["collisions"], f"{protected['min_clearance']:.2f}"],
        ],
    )
    # Shape: the protected variant never collides and keeps more clearance.
    assert protected["collisions"] == 0
    assert protected["min_clearance"] >= unprotected["min_clearance"] - 1e-9
