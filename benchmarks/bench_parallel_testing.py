"""Parallel vs. serial systematic testing — wall-clock speedup and fidelity.

The paper's backend systematic testing engine explores discrete executions
of the RTA model; our :class:`~repro.testing.ParallelTester` shards that
exploration across worker processes.  This benchmark runs the same
random-strategy sweep of the ``drone-surveillance`` scenario serially and
at 1/2/4 workers and reports the wall-clock speedup, then sweeps the
unsafe variant and replays every parallel-found counterexample on the
serial engine to confirm it reproduces the same violation.

Expectations:

* at 4 workers the sweep is at least 2x faster than the serial
  :class:`~repro.testing.SystematicTester` (asserted when the machine
  actually has >= 4 CPUs — a 1-core container cannot speed up CPU-bound
  work, so there the numbers are only reported);
* every counterexample found in parallel replays to the same violation
  set serially (asserted unconditionally).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.testing import ParallelTester, RandomStrategy, SystematicTester, scenario_factory

SCENARIO = "drone-surveillance"
HORIZON = 2.0
EXECUTIONS = 300
SEED = 11


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _serial_sweep() -> float:
    tester = SystematicTester(
        scenario_factory(SCENARIO, horizon=HORIZON),
        strategy=RandomStrategy(seed=SEED, max_executions=EXECUTIONS),
    )
    started = time.perf_counter()
    report = tester.explore()
    elapsed = time.perf_counter() - started
    assert report.execution_count == EXECUTIONS
    return elapsed


def _parallel_sweep(workers: int) -> float:
    tester = ParallelTester(
        SCENARIO,
        scenario_overrides={"horizon": HORIZON},
        strategy=RandomStrategy(seed=SEED, max_executions=EXECUTIONS),
        workers=workers,
    )
    report = tester.explore(confirm_counterexamples=False)
    assert report.execution_count == EXECUTIONS
    return report.wall_time


@pytest.mark.benchmark(group="parallel-testing")
def test_parallel_random_sweep_speedup(benchmark, table_printer, benchmark_gate):
    def run_all():
        serial = _serial_sweep()
        scaled = {workers: _parallel_sweep(workers) for workers in (1, 2, 4)}
        return serial, scaled

    serial, scaled = benchmark.pedantic(run_all, rounds=1, iterations=1)
    benchmark_gate("parallel-testing/serial-sweep", serial)
    benchmark_gate("parallel-testing/4-workers", scaled[4])
    table_printer(
        f"Parallel systematic testing: {EXECUTIONS}-execution random sweep of '{SCENARIO}'",
        ["configuration", "wall time [s]", "speedup", "executions/s"],
        [["serial SystematicTester", f"{serial:.2f}", "1.00x", f"{EXECUTIONS / serial:.0f}"]]
        + [
            [
                f"ParallelTester, {workers} worker(s)",
                f"{elapsed:.2f}",
                f"{serial / elapsed:.2f}x",
                f"{EXECUTIONS / elapsed:.0f}",
            ]
            for workers, elapsed in sorted(scaled.items())
        ],
    )
    speedup_at_4 = serial / scaled[4]
    if _cpus() >= 4:
        assert speedup_at_4 >= 2.0, (
            f"expected >=2x speedup at 4 workers, measured {speedup_at_4:.2f}x"
        )
    else:
        print(
            f"only {_cpus()} CPU(s) available - speedup assertion skipped "
            f"(measured {speedup_at_4:.2f}x at 4 workers)"
        )


@pytest.mark.benchmark(group="parallel-testing")
def test_parallel_counterexamples_replay_serially(benchmark, table_printer):
    def hunt():
        tester = ParallelTester(
            SCENARIO,
            scenario_overrides={"horizon": HORIZON, "include_unsafe_position": True},
            strategy=RandomStrategy(seed=SEED, max_executions=64),
            workers=4,
        )
        return tester.explore(confirm_counterexamples=True)

    report = benchmark.pedantic(hunt, rounds=1, iterations=1)
    confirmed = sum(1 for confirmation in report.confirmations if confirmation.confirmed)
    table_printer(
        "Counterexample fidelity: parallel-found trails replayed on the serial engine",
        ["counterexamples found", "replayed", "confirmed identical"],
        [[len(report.failing), len(report.confirmations), confirmed]],
    )
    assert not report.ok, "the unsafe scenario variant must yield counterexamples"
    assert report.all_confirmed, "every parallel counterexample must replay serially"
