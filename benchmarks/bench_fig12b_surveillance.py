"""Figure 12b — safe motion primitives during a surveillance mission.

Paper result (Section V-A, Figure 12b): during a surveillance mission over
the city, the safe controller takes over briefly near obstacles (the N1/N2
events), pushes the drone back into φ_safer, and returns control; the
advanced controller is in control for most of the mission and the drone
never collides even when it deviates from the reference.  The benchmark
flies randomized surveillance missions over the city with the RTA-protected
stack and reports disengagements, AC-in-control fraction, and safety.
"""

from __future__ import annotations

import pytest

from repro.apps import CampaignMetrics, StackConfig, build_stack
from repro.simulation import surveillance_city

SEEDS = range(3)
GOALS_PER_MISSION = 5
MISSION_TIMEOUT = 300.0


def _mission(seed: int, tracker: str = "learned"):
    world = surveillance_city()
    config = StackConfig(
        world=world,
        goals=[],
        random_goals=GOALS_PER_MISSION,
        loop_goals=False,
        planner="astar",
        tracker=tracker,
        protect_battery=True,
        seed=seed,
    )
    stack = build_stack(config)
    metrics, result = stack.run(duration=MISSION_TIMEOUT)
    return metrics


@pytest.mark.benchmark(group="fig12b")
def test_fig12b_rta_protected_surveillance(benchmark, table_printer):
    def campaign():
        missions = CampaignMetrics()
        for seed in SEEDS:
            missions.add(_mission(seed))
        return missions

    campaign_metrics = benchmark.pedantic(campaign, rounds=1, iterations=1)
    rows = []
    for index, mission in enumerate(campaign_metrics.missions):
        rows.append(
            [
                f"mission {index}",
                f"{mission.mission_time:.0f}",
                mission.goals_visited,
                mission.disengagements.get("SafeMotionPrimitive", 0),
                f"{mission.ac_time_fraction.get('SafeMotionPrimitive', 1.0):.2f}",
                f"{mission.min_clearance:.2f}",
                mission.collided,
            ]
        )
    table_printer(
        "Figure 12b: RTA-protected surveillance missions over the city",
        ["mission", "time [s]", "goals", "SC engagements", "AC fraction", "min clearance [m]", "collided"],
        rows,
    )
    # Shape: every mission completes safely; the AC is in control for most of
    # the time (paper: > 96 % over the long campaign); when the SC engages it
    # always hands control back.
    assert campaign_metrics.collisions == 0
    assert all(mission.completed for mission in campaign_metrics.missions)
    assert campaign_metrics.mean_ac_fraction() > 0.85
    for mission in campaign_metrics.missions:
        for module, count in mission.disengagements.items():
            assert mission.reengagements[module] >= count
